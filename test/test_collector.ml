(* ef_collector: Bmp codec, Monitor, Snmp, Snapshot *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
open Helpers

let bmp_t = Alcotest.testable C.Bmp.pp C.Bmp.equal

let header =
  {
    C.Bmp.peer_id = 3;
    peer_addr = ip "172.16.0.3";
    peer_asn = Bgp.Asn.of_int 64501;
    peer_bgp_id = ip "10.0.0.3";
    timestamp_s = 123456;
  }

let bmp_roundtrip msg =
  let wire = C.Bmp.encode msg in
  match C.Bmp.decode wire with
  | Error e -> Alcotest.failf "decode: %s" (Format.asprintf "%a" C.Bmp.pp_error e)
  | Ok (decoded, consumed) ->
      Alcotest.(check int) "consumed" (String.length wire) consumed;
      decoded

let test_bmp_initiation_roundtrip () =
  let msg = C.Bmp.Initiation { sys_name = "pr1.pop-a"; sys_descr = "edge-fabric" } in
  Alcotest.check bmp_t "initiation" msg (bmp_roundtrip msg)

let test_bmp_termination_roundtrip () =
  let msg = C.Bmp.Termination { reason = 1 } in
  Alcotest.check bmp_t "termination" msg (bmp_roundtrip msg)

let test_bmp_peer_up_roundtrip () =
  let msg =
    C.Bmp.Peer_up
      { header; local_addr = ip "10.0.0.1"; local_port = 179; remote_port = 33001 }
  in
  Alcotest.check bmp_t "peer up" msg (bmp_roundtrip msg)

let test_bmp_peer_down_roundtrip () =
  let msg = C.Bmp.Peer_down { header; reason = 2 } in
  Alcotest.check bmp_t "peer down" msg (bmp_roundtrip msg)

let test_bmp_route_monitoring_roundtrip () =
  let update =
    {
      Bgp.Msg.withdrawn = [ prefix "10.9.0.0/16" ];
      attrs =
        Some
          (attrs ~med:(Some 10) ~local_pref:(Some 300)
             ~communities:[ Bgp.Community.make 65000 911 ]
             ~path:[ 64501; 7 ] ());
      nlri = [ prefix "203.0.113.0/24" ];
    }
  in
  let msg = C.Bmp.Route_monitoring { header; update } in
  Alcotest.check bmp_t "route monitoring" msg (bmp_roundtrip msg)

let test_bmp_stats_roundtrip () =
  let msg = C.Bmp.Stats_report { header; routes_monitored = 12345 } in
  Alcotest.check bmp_t "stats" msg (bmp_roundtrip msg)

let test_bmp_decode_all () =
  let msgs =
    [
      C.Bmp.Initiation { sys_name = "x"; sys_descr = "y" };
      C.Bmp.Peer_up
        { header; local_addr = ip "10.0.0.1"; local_port = 179; remote_port = 3 };
      C.Bmp.Peer_down { header; reason = 1 };
    ]
  in
  let wire = String.concat "" (List.map C.Bmp.encode msgs) in
  match C.Bmp.decode_all wire with
  | Error _ -> Alcotest.fail "decode_all failed"
  | Ok decoded -> Alcotest.(check (list bmp_t)) "all" msgs decoded

let test_bmp_bad_version () =
  let wire = Bytes.of_string (C.Bmp.encode (C.Bmp.Termination { reason = 0 })) in
  Bytes.set wire 0 '\x02';
  match C.Bmp.decode (Bytes.to_string wire) with
  | Error (C.Bmp.Bad_version 2) -> ()
  | _ -> Alcotest.fail "accepted bad version"

let test_bmp_truncated () =
  let wire = C.Bmp.encode (C.Bmp.Termination { reason = 0 }) in
  match C.Bmp.decode (String.sub wire 0 3) with
  | Error C.Bmp.Truncated -> ()
  | _ -> Alcotest.fail "expected truncated"

(* --- Monitor: BMP mirror reproduces the PoP RIB ----------------------- *)

let test_monitor_mirror_roundtrip () =
  let world = N.Topo_gen.generate N.Topo_gen.small_config in
  let pop = world.N.Topo_gen.pop in
  let msgs = C.Monitor.mirror_of_pop pop ~time_s:42 in
  let wire = String.concat "" (List.map C.Bmp.encode msgs) in
  let monitor =
    C.Monitor.create
      ~peer_directory:(fun id -> N.Pop.peer pop id)
      ~policy:(Ef_policy.standard_import_map ~self_asn:(N.Pop.asn pop))
      ()
  in
  (match C.Monitor.feed_bytes monitor wire with
  | Ok () -> ()
  | Error e -> Alcotest.failf "feed: %s" (Format.asprintf "%a" C.Bmp.pp_error e));
  let orig = N.Pop.rib pop and mirror = C.Monitor.rib monitor in
  Alcotest.(check int) "same prefix count" (Bgp.Rib.prefix_count orig)
    (Bgp.Rib.prefix_count mirror);
  Alcotest.(check int) "same route count" (Bgp.Rib.route_count orig)
    (Bgp.Rib.route_count mirror);
  (* spot-check: best routes agree everywhere *)
  List.iter
    (fun p ->
      match (Bgp.Rib.best orig p, Bgp.Rib.best mirror p) with
      | Some a, Some b ->
          Alcotest.(check int)
            (Bgp.Prefix.to_string p)
            (Bgp.Route.peer_id a) (Bgp.Route.peer_id b)
      | None, None -> ()
      | _ -> Alcotest.failf "best mismatch for %s" (Bgp.Prefix.to_string p))
    world.N.Topo_gen.all_prefixes

let test_monitor_unknown_peer_ignored () =
  let monitor =
    C.Monitor.create
      ~peer_directory:(fun _ -> None)
      ~policy:Bgp.Policy.accept_all ()
  in
  C.Monitor.feed_msg monitor
    (C.Bmp.Peer_up
       { header; local_addr = ip "10.0.0.1"; local_port = 179; remote_port = 1 });
  Alcotest.(check int) "ignored" 1 (C.Monitor.msgs_ignored monitor);
  Alcotest.(check int) "no peers" 0 (List.length (C.Monitor.peers_seen monitor))

let test_monitor_peer_down_flushes () =
  let p = peer ~kind:Bgp.Peer.Transit ~asn:64501 3 in
  let monitor =
    C.Monitor.create
      ~peer_directory:(fun id -> if id = 3 then Some p else None)
      ~policy:Bgp.Policy.accept_all ()
  in
  let update =
    { Bgp.Msg.withdrawn = []; attrs = Some (attrs ()); nlri = [ prefix "10.0.0.0/8" ] }
  in
  C.Monitor.feed_msg monitor (C.Bmp.Route_monitoring { header; update });
  Alcotest.(check int) "route present" 1 (Bgp.Rib.prefix_count (C.Monitor.rib monitor));
  C.Monitor.feed_msg monitor (C.Bmp.Peer_down { header; reason = 1 });
  Alcotest.(check int) "flushed" 0 (Bgp.Rib.prefix_count (C.Monitor.rib monitor))

(* --- Snmp -------------------------------------------------------------- *)

let two_ifaces () =
  [
    N.Iface.make ~id:0 ~name:"a" ~capacity_bps:10e9 ~shared:false;
    N.Iface.make ~id:1 ~name:"b" ~capacity_bps:100e9 ~shared:true;
  ]

let test_snmp_first_poll_zero () =
  let snmp = C.Snmp.create (two_ifaces ()) in
  C.Snmp.account_rate snmp ~iface_id:0 ~rate_bps:5e9 ~interval_s:30.0;
  let polls = C.Snmp.poll snmp ~interval_s:30.0 in
  List.iter
    (fun p -> Helpers.check_float "first poll zero" 0.0 p.C.Snmp.out_bps)
    polls

let test_snmp_rate_from_delta () =
  let snmp = C.Snmp.create (two_ifaces ()) in
  ignore (C.Snmp.poll snmp ~interval_s:30.0);
  C.Snmp.account_rate snmp ~iface_id:0 ~rate_bps:5e9 ~interval_s:30.0;
  let polls = C.Snmp.poll snmp ~interval_s:30.0 in
  (match polls with
  | [ p0; p1 ] ->
      Helpers.check_float_eps 1.0 "rate recovered" 5e9 p0.C.Snmp.out_bps;
      Helpers.check_float_eps 1e-9 "utilization" 0.5 p0.C.Snmp.utilization;
      Helpers.check_float "idle iface" 0.0 p1.C.Snmp.out_bps
  | _ -> Alcotest.fail "expected two polls")

let test_snmp_counter_reset () =
  let snmp = C.Snmp.create (two_ifaces ()) in
  C.Snmp.account_rate snmp ~iface_id:0 ~rate_bps:5e9 ~interval_s:30.0;
  ignore (C.Snmp.poll snmp ~interval_s:30.0);
  C.Snmp.reset snmp ~iface_id:0;
  C.Snmp.account_rate snmp ~iface_id:0 ~rate_bps:1e9 ~interval_s:30.0;
  (* counter went backwards: a reset, not a negative rate *)
  let polls = C.Snmp.poll snmp ~interval_s:30.0 in
  List.iter
    (fun p ->
      if p.C.Snmp.out_bps < 0.0 then Alcotest.fail "negative rate after reset")
    polls

let test_snmp_unknown_iface () =
  let snmp = C.Snmp.create (two_ifaces ()) in
  Alcotest.check_raises "unknown" (Invalid_argument "Snmp: unknown interface 9")
    (fun () -> C.Snmp.account_bytes snmp ~iface_id:9 ~bytes:1.0)

(* --- Snapshot ----------------------------------------------------------- *)

let test_snapshot_of_pop () =
  let world = N.Topo_gen.generate N.Topo_gen.small_config in
  let pop = world.N.Topo_gen.pop in
  let rates =
    List.map (fun p -> (p, world.N.Topo_gen.prefix_weight p *. 1e9))
      world.N.Topo_gen.all_prefixes
  in
  let snap = C.Snapshot.of_pop pop ~prefix_rates:rates ~time_s:77 in
  Alcotest.(check int) "time" 77 (C.Snapshot.time_s snap);
  Alcotest.(check int) "prefixes" (List.length rates) (C.Snapshot.prefix_count snap);
  (* rates sorted descending *)
  let sorted = List.map snd (C.Snapshot.prefix_rates snap) in
  Alcotest.(check bool) "descending" true
    (sorted = List.sort (fun a b -> compare b a) sorted);
  (* routes are ranked: head is the RIB best *)
  List.iter
    (fun p ->
      match (C.Snapshot.preferred_route snap p, Bgp.Rib.best (N.Pop.rib pop) p) with
      | Some a, Some b ->
          Alcotest.(check int) "same best" (Bgp.Route.peer_id a) (Bgp.Route.peer_id b)
      | None, None -> ()
      | _ -> Alcotest.fail "preferred mismatch")
    world.N.Topo_gen.all_prefixes

let test_snapshot_drops_zero_rates () =
  let world = N.Topo_gen.generate N.Topo_gen.small_config in
  let pop = world.N.Topo_gen.pop in
  let p0 = List.nth world.N.Topo_gen.all_prefixes 0 in
  let p1 = List.nth world.N.Topo_gen.all_prefixes 1 in
  let snap =
    C.Snapshot.of_pop pop ~prefix_rates:[ (p0, 0.0); (p1, 5.0) ] ~time_s:0
  in
  Alcotest.(check int) "only one" 1 (C.Snapshot.prefix_count snap);
  Helpers.check_float "rate_of zero" 0.0 (C.Snapshot.rate_of snap p0);
  Helpers.check_float "rate_of kept" 5.0 (C.Snapshot.rate_of snap p1)

let test_snapshot_iface_of_route () =
  let world = N.Topo_gen.generate N.Topo_gen.small_config in
  let pop = world.N.Topo_gen.pop in
  let p = List.hd world.N.Topo_gen.all_prefixes in
  let snap = C.Snapshot.of_pop pop ~prefix_rates:[ (p, 1.0) ] ~time_s:0 in
  match C.Snapshot.preferred_route snap p with
  | None -> Alcotest.fail "no route"
  | Some r -> (
      match C.Snapshot.iface_of_route snap r with
      | None -> Alcotest.fail "no iface"
      | Some iface ->
          Alcotest.(check int) "consistent with pop" (N.Iface.id iface)
            (N.Iface.id (N.Pop.iface_of_peer pop ~peer_id:(Bgp.Route.peer_id r))))

let suite =
  [
    Alcotest.test_case "bmp initiation" `Quick test_bmp_initiation_roundtrip;
    Alcotest.test_case "bmp termination" `Quick test_bmp_termination_roundtrip;
    Alcotest.test_case "bmp peer up" `Quick test_bmp_peer_up_roundtrip;
    Alcotest.test_case "bmp peer down" `Quick test_bmp_peer_down_roundtrip;
    Alcotest.test_case "bmp route monitoring" `Quick
      test_bmp_route_monitoring_roundtrip;
    Alcotest.test_case "bmp stats" `Quick test_bmp_stats_roundtrip;
    Alcotest.test_case "bmp decode_all" `Quick test_bmp_decode_all;
    Alcotest.test_case "bmp bad version" `Quick test_bmp_bad_version;
    Alcotest.test_case "bmp truncated" `Quick test_bmp_truncated;
    Alcotest.test_case "monitor mirror roundtrip" `Quick
      test_monitor_mirror_roundtrip;
    Alcotest.test_case "monitor unknown peer" `Quick
      test_monitor_unknown_peer_ignored;
    Alcotest.test_case "monitor peer down flushes" `Quick
      test_monitor_peer_down_flushes;
    Alcotest.test_case "snmp first poll zero" `Quick test_snmp_first_poll_zero;
    Alcotest.test_case "snmp rate from delta" `Quick test_snmp_rate_from_delta;
    Alcotest.test_case "snmp counter reset" `Quick test_snmp_counter_reset;
    Alcotest.test_case "snmp unknown iface" `Quick test_snmp_unknown_iface;
    Alcotest.test_case "snapshot of pop" `Quick test_snapshot_of_pop;
    Alcotest.test_case "snapshot drops zero rates" `Quick
      test_snapshot_drops_zero_rates;
    Alcotest.test_case "snapshot iface of route" `Quick test_snapshot_iface_of_route;
  ]
