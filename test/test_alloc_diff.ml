(* Differential pin: the optimized allocator (indexed snapshot, working
   projection, incremental overload set) must be observationally
   byte-identical to the frozen pre-PR reference (Ef.Allocator_ref) —
   same overrides, same residuals, same counters, same final loads, same
   trace records — across seeded worlds and every config axis the loop
   branches on. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
module Trace = Ef_trace.Recorder

let override_list : Ef.Override.t list Alcotest.testable =
  Alcotest.testable
    (Fmt.Dump.list Ef.Override.pp)
    (fun a b -> a = b)

let snapshot_of_world ?rate_factor world =
  Gen.snapshot_of_world ?rate_factor world

(* every config axis the relief loop branches on *)
let configs =
  [|
    ("default", Ef.Config.default);
    ("smallest-first", Ef.Config.(default |> with_order Smallest_first));
    ("single-pass", Ef.Config.(default |> with_iterative false));
    ( "split-24",
      Ef.Config.(
        default |> with_granularity Split_24 |> with_overload_threshold 0.85) );
    ( "budget-2",
      Ef.Config.(default |> with_max_overrides_per_cycle (Some 2)) );
  |]

let trace_bytes tr = Ef_obs.Json.to_string (Trace.to_json tr)

let loads_of proj ifaces =
  List.map
    (fun i ->
      (N.Iface.id i, Ef.Projection.load_bps proj ~iface_id:(N.Iface.id i)))
    ifaces

let residual_ids r =
  List.map (fun (i, u) -> (N.Iface.id i, u)) r.Ef.Allocator.residual

let check_identical ~ctx ~config snap =
  let traced run =
    let tr = Trace.create () in
    Trace.begin_cycle tr ~index:1 ~time_s:0;
    let result = run ~config ~trace:tr snap in
    Trace.end_cycle tr;
    (result, tr)
  in
  let opt, tr_opt = traced (fun ~config ~trace s -> Ef.Allocator.run ~config ~trace s) in
  let rf, tr_ref = traced (fun ~config ~trace s -> Ef.Allocator_ref.run ~config ~trace s) in
  Alcotest.check override_list (ctx ^ ": overrides") rf.Ef.Allocator.overrides
    opt.Ef.Allocator.overrides;
  Alcotest.(check (list (pair int (float 0.0))))
    (ctx ^ ": residual") (residual_ids rf) (residual_ids opt);
  Alcotest.(check int)
    (ctx ^ ": moves") rf.Ef.Allocator.moves_considered
    opt.Ef.Allocator.moves_considered;
  Alcotest.(check int) (ctx ^ ": splits") rf.Ef.Allocator.splits opt.Ef.Allocator.splits;
  let ifaces = C.Snapshot.ifaces snap in
  Alcotest.(check (list (pair int (float 0.0))))
    (ctx ^ ": final loads")
    (loads_of rf.Ef.Allocator.final ifaces)
    (loads_of opt.Ef.Allocator.final ifaces);
  Alcotest.(check string)
    (ctx ^ ": trace bytes") (trace_bytes tr_ref) (trace_bytes tr_opt)

(* 100 seeded worlds × cycled config/demand variations *)
let test_differential_seeded_worlds () =
  for i = 0 to 99 do
    let cfg_name, config = configs.(i mod Array.length configs) in
    let world =
      N.Topo_gen.generate { N.Topo_gen.small_config with N.Topo_gen.seed = 1000 + i }
    in
    let rate_factor = 0.8 +. (0.15 *. float_of_int (i mod 5)) in
    let snap = snapshot_of_world ~rate_factor world in
    let ctx = Printf.sprintf "world %d (%s, x%.2f)" i cfg_name rate_factor in
    check_identical ~ctx ~config snap
  done

(* the same pin on the larger canned scenarios the benches use *)
let test_differential_scenarios () =
  List.iter
    (fun scenario ->
      let world = N.Topo_gen.generate scenario.N.Scenario.topo in
      let snap = snapshot_of_world world in
      check_identical ~ctx:scenario.N.Scenario.scenario_name
        ~config:Ef.Config.default snap)
    [ N.Scenario.tiny; N.Scenario.pop_d ]

(* overrides byte-render identically, not merely structurally *)
let test_differential_override_rendering () =
  let world =
    N.Topo_gen.generate { N.Topo_gen.small_config with N.Topo_gen.seed = 77 }
  in
  let snap = snapshot_of_world ~rate_factor:1.2 world in
  let render r =
    List.map
      (fun o -> Format.asprintf "%a" Ef.Override.pp o)
      r.Ef.Allocator.overrides
  in
  let opt = Ef.Allocator.run ~config:Ef.Config.default snap in
  let rf = Ef.Allocator_ref.run ~config:Ef.Config.default snap in
  Alcotest.(check (list string)) "rendered overrides" (render rf) (render opt)

(* the sharded allocator (config.shards > 1: projection and working-set
   construction fan out across domains) must be invisible in every
   observable: same overrides, residuals, final loads and trace bytes
   as the serial run, across seeded worlds and shard counts *)
let test_shard_invariance () =
  for i = 0 to 19 do
    let world =
      N.Topo_gen.generate
        { N.Topo_gen.small_config with N.Topo_gen.seed = 4200 + i }
    in
    let snap = snapshot_of_world ~rate_factor:1.1 world in
    let run shards =
      let tr = Trace.create () in
      Trace.begin_cycle tr ~index:1 ~time_s:0;
      let r =
        Ef.Allocator.run
          ~config:(Ef.Config.with_shards shards Ef.Config.default)
          ~trace:tr snap
      in
      Trace.end_cycle tr;
      (r, tr)
    in
    let base, tr_base = run 1 in
    let ifaces = C.Snapshot.ifaces snap in
    List.iter
      (fun shards ->
        let r, tr = run shards in
        let ctx = Printf.sprintf "world %d shards=%d" i shards in
        Alcotest.check override_list (ctx ^ ": overrides")
          base.Ef.Allocator.overrides r.Ef.Allocator.overrides;
        Alcotest.(check (list (pair int (float 0.0))))
          (ctx ^ ": residual") (residual_ids base) (residual_ids r);
        Alcotest.(check (list (pair int (float 0.0))))
          (ctx ^ ": final loads")
          (loads_of base.Ef.Allocator.final ifaces)
          (loads_of r.Ef.Allocator.final ifaces);
        Alcotest.(check string)
          (ctx ^ ": trace bytes") (trace_bytes tr_base) (trace_bytes tr))
      [ 2; 4 ]
  done

let suite =
  [
    Alcotest.test_case "optimized = reference on 100 seeded worlds" `Quick
      test_differential_seeded_worlds;
    Alcotest.test_case "sharded = serial on 20 seeded worlds" `Quick
      test_shard_invariance;
    Alcotest.test_case "optimized = reference on canned scenarios" `Quick
      test_differential_scenarios;
    Alcotest.test_case "override rendering byte-identical" `Quick
      test_differential_override_rendering;
  ]
