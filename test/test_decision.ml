(* ef_bgp: Decision process and Policy engine.

   This file exercises the clause-level Ef_bgp.Policy layer directly —
   it is the compiled target of Ef_policy programs, and its first-match
   semantics must stay pinned independently of the DSL. *)
[@@@alert "-deprecated"]

module Bgp = Ef_bgp
open Helpers

let best routes = Bgp.Decision.best routes

let test_local_pref_wins () =
  let low = route ~peer_id:1 ~local_pref:(Some 200) ~path:[ 1 ] () in
  let high = route ~peer_id:2 ~local_pref:(Some 400) ~path:[ 1; 2; 3 ] () in
  (* higher local-pref wins despite the longer path *)
  Alcotest.check (Alcotest.option route_t) "best" (Some high) (best [ low; high ])

let test_path_length_breaks_tie () =
  let short = route ~peer_id:1 ~path:[ 1; 2 ] () in
  let long = route ~peer_id:2 ~path:[ 1; 2; 3 ] () in
  Alcotest.check (Alcotest.option route_t) "best" (Some short) (best [ long; short ])

let test_origin_breaks_tie () =
  let igp = route ~peer_id:1 ~origin:Bgp.Attrs.Igp ~path:[ 1; 2 ] () in
  let incomplete = route ~peer_id:2 ~origin:Bgp.Attrs.Incomplete ~path:[ 1; 2 ] () in
  Alcotest.check (Alcotest.option route_t) "best" (Some igp)
    (best [ incomplete; igp ])

let test_med_same_neighbor () =
  (* same neighbor AS (same first hop): lower MED wins *)
  let low = route ~peer_id:1 ~med:(Some 10) ~path:[ 7; 2 ] () in
  let high = route ~peer_id:2 ~med:(Some 50) ~path:[ 7; 3 ] () in
  Alcotest.check (Alcotest.option route_t) "best" (Some low) (best [ high; low ])

let test_med_ignored_across_neighbors () =
  (* different neighbor AS: MED not compared; router-id decides (peer 1
     has the lower router id) *)
  let a = route ~peer_id:1 ~med:(Some 50) ~path:[ 7; 2 ] () in
  let b = route ~peer_id:2 ~med:(Some 10) ~path:[ 8; 2 ] () in
  Alcotest.check (Alcotest.option route_t) "best" (Some a) (best [ b; a ])

let test_med_always_mode () =
  let config = { Bgp.Decision.med_mode = Bgp.Decision.Always } in
  let a = route ~peer_id:1 ~med:(Some 50) ~path:[ 7; 2 ] () in
  let b = route ~peer_id:2 ~med:(Some 10) ~path:[ 8; 2 ] () in
  Alcotest.check (Alcotest.option route_t) "best" (Some b)
    (Bgp.Decision.best ~config [ a; b ])

let test_router_id_tiebreak () =
  let a = route ~peer_id:1 ~path:[ 1; 2 ] () in
  let b = route ~peer_id:2 ~path:[ 3; 2 ] () in
  (* identical on all attributes; peer 1 has lower router id (10.0.0.1) *)
  Alcotest.check (Alcotest.option route_t) "best" (Some a) (best [ b; a ])

let test_empty_candidates () =
  Alcotest.check (Alcotest.option route_t) "none" None (best [])

let test_rank_total_and_consistent () =
  let routes =
    [
      route ~peer_id:1 ~local_pref:(Some 400) ~path:[ 1 ] ();
      route ~peer_id:2 ~local_pref:(Some 350) ~path:[ 2 ] ();
      route ~peer_id:3 ~local_pref:(Some 200) ~path:[ 3; 4 ] ();
      route ~peer_id:4 ~local_pref:(Some 200) ~path:[ 5 ] ();
    ]
  in
  let ranked = Bgp.Decision.rank routes in
  Alcotest.(check int) "all ranked" 4 (List.length ranked);
  Alcotest.check route_t "head = best"
    (Option.get (best routes))
    (List.hd ranked);
  (* the transit with the shorter path ranks above the longer one *)
  Alcotest.(check int) "3rd is short transit" 4
    (Bgp.Route.peer_id (List.nth ranked 2));
  Alcotest.(check int) "4th is long transit" 3
    (Bgp.Route.peer_id (List.nth ranked 3))

let test_preference_level () =
  let r1 = route ~peer_id:1 ~local_pref:(Some 400) () in
  let r2 = route ~peer_id:2 ~local_pref:(Some 300) () in
  let candidates = [ r2; r1 ] in
  Alcotest.(check (option int)) "best is 0" (Some 0)
    (Bgp.Decision.preference_level candidates r1);
  Alcotest.(check (option int)) "alt is 1" (Some 1)
    (Bgp.Decision.preference_level candidates r2);
  let stranger = route ~peer_id:9 () in
  Alcotest.(check (option int)) "absent" None
    (Bgp.Decision.preference_level candidates stranger)

(* --- Policy --------------------------------------------------------- *)

let test_policy_default_deny () =
  let p = Bgp.Policy.make [] in
  Alcotest.(check bool) "denied" true (Option.is_none (Bgp.Policy.apply p (route ())))

let test_policy_accept_all () =
  Alcotest.(check bool) "accepted" true
    (Option.is_some (Bgp.Policy.apply Bgp.Policy.accept_all (route ())))

let test_policy_first_match_wins () =
  let open Bgp.Policy in
  let p =
    make
      [
        {
          clause_name = "set-100";
          guard = Match_any;
          actions = [ Set_local_pref 100 ];
          verdict = Accept;
        };
        {
          clause_name = "set-999";
          guard = Match_any;
          actions = [ Set_local_pref 999 ];
          verdict = Accept;
        };
      ]
  in
  match apply p (route ()) with
  | None -> Alcotest.fail "rejected"
  | Some r -> Alcotest.(check int) "first clause applied" 100 (Bgp.Route.local_pref r)

let test_policy_matchers () =
  let open Bgp.Policy in
  let r =
    route ~prefix_str:"10.1.2.0/24" ~kind:Bgp.Peer.Private_peer ~asn:100
      ~communities:[ Bgp.Community.make 1 2 ] ~path:[ 100; 200 ] ()
  in
  let checks =
    [
      ("prefix", Match_prefix (prefix "10.0.0.0/8"), true);
      ("prefix miss", Match_prefix (prefix "11.0.0.0/8"), false);
      ("exact", Match_prefix_exact (prefix "10.1.2.0/24"), true);
      ("exact miss", Match_prefix_exact (prefix "10.1.0.0/16"), false);
      ("len", Match_prefix_len_at_least 24, true);
      ("len miss", Match_prefix_len_at_least 25, false);
      ("community", Match_community (Bgp.Community.make 1 2), true);
      ("kind", Match_peer_kind Bgp.Peer.Private_peer, true);
      ("kind miss", Match_peer_kind Bgp.Peer.Transit, false);
      ("peer asn", Match_peer_asn (Bgp.Asn.of_int 100), true);
      ("path", Match_path_contains (Bgp.Asn.of_int 200), true);
      ("not", Match_not (Match_peer_kind Bgp.Peer.Transit), true);
      ( "all",
        Match_all [ Match_prefix_len_at_least 24; Match_peer_asn (Bgp.Asn.of_int 100) ],
        true );
      ( "or",
        Match_or [ Match_peer_kind Bgp.Peer.Transit; Match_prefix_len_at_least 10 ],
        true );
    ]
  in
  List.iter
    (fun (name, m, expected) ->
      Alcotest.(check bool) name expected (matches m r))
    checks

let test_default_ingest_tiers () =
  let policy = Bgp.Policy.default_ingest ~self_asn:(Bgp.Asn.of_int 64500) in
  let check_kind kind expected_lp =
    let r = route ~kind ~path:[ 100 ] () in
    match Bgp.Policy.apply policy r with
    | None -> Alcotest.failf "%s rejected" (Bgp.Peer.kind_to_string kind)
    | Some r ->
        Alcotest.(check int)
          (Bgp.Peer.kind_to_string kind)
          expected_lp (Bgp.Route.local_pref r);
        Alcotest.(check bool) "tagged" true
          (Bgp.Route.has_community (Bgp.Policy.ingest_community kind) r)
  in
  check_kind Bgp.Peer.Private_peer 400;
  check_kind Bgp.Peer.Public_peer 350;
  check_kind Bgp.Peer.Route_server 300;
  check_kind Bgp.Peer.Transit 200

let test_default_ingest_rejects () =
  let policy = Bgp.Policy.default_ingest ~self_asn:(Bgp.Asn.of_int 64500) in
  (* own ASN in path: loop *)
  Alcotest.(check bool) "own asn" true
    (Option.is_none (Bgp.Policy.apply policy (route ~path:[ 100; 64500; 7 ] ())));
  (* too-specific *)
  Alcotest.(check bool) "/25 rejected" true
    (Option.is_none
       (Bgp.Policy.apply policy (route ~prefix_str:"10.0.0.0/25" ())));
  (* default route *)
  Alcotest.(check bool) "default rejected" true
    (Option.is_none (Bgp.Policy.apply policy (route ~prefix_str:"0.0.0.0/0" ())))

let test_policy_prepend_action () =
  let open Bgp.Policy in
  let p =
    make
      [
        {
          clause_name = "prepend";
          guard = Match_any;
          actions = [ Prepend (Bgp.Asn.of_int 64500, 2) ];
          verdict = Accept;
        };
      ]
  in
  match apply p (route ~path:[ 1 ] ()) with
  | None -> Alcotest.fail "rejected"
  | Some r -> Alcotest.(check int) "prepended" 3 (Bgp.Route.as_path_length r)

(* ranking is a permutation of the candidates and its head is `best` *)
let qcheck_rank_permutation =
  let gen_routes =
    QCheck.Gen.(
      list_size (int_range 1 8)
        (map
           (fun (pid, lp, plen, med) ->
             route ~peer_id:(pid mod 16) ~local_pref:(Some (100 + (lp mod 4 * 100)))
               ~med:(Some (med mod 3 * 10))
               ~path:(List.init (1 + (plen mod 4)) (fun i -> 100 + i))
               ())
           (quad small_nat small_nat small_nat small_nat)))
  in
  QCheck.Test.make ~name:"rank is a permutation with best at head" ~count:300
    (QCheck.make gen_routes)
    (fun routes ->
      (* dedup by peer id as a RIB would *)
      let routes =
        List.sort_uniq (fun a b -> compare (Bgp.Route.peer_id a) (Bgp.Route.peer_id b))
          routes
      in
      let ranked = Bgp.Decision.rank routes in
      List.length ranked = List.length routes
      && (match (ranked, Bgp.Decision.best routes) with
         | r :: _, Some b -> Bgp.Route.equal r b
         | [], None -> true
         | _ -> false)
      && List.for_all (fun r -> List.exists (Bgp.Route.equal r) ranked) routes)

let suite =
  [
    Alcotest.test_case "local pref wins" `Quick test_local_pref_wins;
    Alcotest.test_case "path length tiebreak" `Quick test_path_length_breaks_tie;
    Alcotest.test_case "origin tiebreak" `Quick test_origin_breaks_tie;
    Alcotest.test_case "med same neighbor" `Quick test_med_same_neighbor;
    Alcotest.test_case "med ignored across neighbors" `Quick
      test_med_ignored_across_neighbors;
    Alcotest.test_case "med always mode" `Quick test_med_always_mode;
    Alcotest.test_case "router id tiebreak" `Quick test_router_id_tiebreak;
    Alcotest.test_case "empty candidates" `Quick test_empty_candidates;
    Alcotest.test_case "rank total and consistent" `Quick
      test_rank_total_and_consistent;
    Alcotest.test_case "preference level" `Quick test_preference_level;
    Alcotest.test_case "policy default deny" `Quick test_policy_default_deny;
    Alcotest.test_case "policy accept all" `Quick test_policy_accept_all;
    Alcotest.test_case "policy first match wins" `Quick test_policy_first_match_wins;
    Alcotest.test_case "policy matchers" `Quick test_policy_matchers;
    Alcotest.test_case "default ingest tiers" `Quick test_default_ingest_tiers;
    Alcotest.test_case "default ingest rejects" `Quick test_default_ingest_rejects;
    Alcotest.test_case "policy prepend action" `Quick test_policy_prepend_action;
    QCheck_alcotest.to_alcotest qcheck_rank_permutation;
  ]
