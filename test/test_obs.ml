(* Ef_obs: registry semantics, span timing, journal, engine integration *)

module O = Ef_obs
module N = Ef_netsim
module S = Ef_sim

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- counters ----------------------------------------------------------- *)

let test_counter_monotonic () =
  let reg = O.Registry.create () in
  let c = O.Registry.counter reg "c" in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (O.Counter.value c);
  O.Counter.inc c;
  O.Counter.add c 2.5;
  Alcotest.(check (float 1e-9)) "accumulates" 3.5 (O.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Ef_obs.Counter.add: negative delta -1 on c") (fun () ->
      O.Counter.add c (-1.0));
  Alcotest.(check (float 1e-9)) "unchanged after reject" 3.5 (O.Counter.value c)

let test_get_or_create () =
  let reg = O.Registry.create () in
  let a = O.Registry.counter reg "x" in
  let b = O.Registry.counter reg "x" in
  O.Counter.inc a;
  O.Counter.inc b;
  Alcotest.(check (float 0.0)) "same handle" 2.0 (O.Counter.value a);
  Alcotest.(check bool)
    "kind mismatch rejected" true
    (match O.Registry.gauge reg "x" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_gauge () =
  let reg = O.Registry.create () in
  let g = O.Registry.gauge reg "g" in
  O.Gauge.set g 5.0;
  O.Gauge.set g 2.0;
  Alcotest.(check (float 0.0)) "last write wins" 2.0 (O.Gauge.value g)

(* --- histograms --------------------------------------------------------- *)

let test_histogram_quantiles () =
  let reg = O.Registry.create () in
  let h = O.Registry.histogram reg "h" in
  Alcotest.(check int) "empty count" 0 (O.Histogram.count h);
  (* regression: empty-histogram quantiles are clamped to 0., never nan —
     a nan here leaks "null" into JSON and an unparsable sample into
     OpenMetrics *)
  Alcotest.(check (float 0.0)) "empty p50 clamped" 0.0
    (O.Histogram.quantile h 0.5);
  Alcotest.(check (float 0.0)) "empty p99 clamped" 0.0
    (O.Histogram.quantile h 0.99);
  for i = 1 to 100 do
    O.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (O.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 5050.0 (O.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (O.Histogram.mean h);
  Alcotest.(check (float 1.0)) "p50" 50.0 (O.Histogram.quantile h 0.5);
  Alcotest.(check (float 1.0)) "p99" 99.0 (O.Histogram.quantile h 0.99);
  Alcotest.(check (float 0.0)) "max" 100.0 (O.Histogram.max_value h)

(* --- spans --------------------------------------------------------------- *)

(* a deterministic clock: each read advances one microsecond *)
let with_fake_clock f =
  let t = ref 0L in
  O.Clock.set_now_ns (fun () ->
      t := Int64.add !t 1_000L;
      !t);
  Fun.protect ~finally:O.Clock.reset f

let test_span_nesting () =
  with_fake_clock @@ fun () ->
  let reg = O.Registry.create () in
  Alcotest.(check int) "idle depth" 0 (O.Registry.Span.depth reg);
  let inner_depth = ref (-1) in
  let inner_stack = ref [] in
  O.Registry.Span.time ~registry:reg "outer" (fun () ->
      O.Registry.Span.time ~registry:reg "inner" (fun () ->
          inner_depth := O.Registry.Span.depth reg;
          inner_stack := O.Registry.Span.current reg));
  Alcotest.(check int) "nested depth" 2 !inner_depth;
  Alcotest.(check (list string))
    "innermost first" [ "inner"; "outer" ] !inner_stack;
  Alcotest.(check int) "unwound" 0 (O.Registry.Span.depth reg);
  let count name =
    match O.Registry.find reg name with
    | Some (O.Registry.Span_m h) -> O.Histogram.count h
    | _ -> -1
  in
  Alcotest.(check int) "outer recorded" 1 (count "outer");
  Alcotest.(check int) "inner recorded" 1 (count "inner")

let test_span_unwinds_on_exception () =
  with_fake_clock @@ fun () ->
  let reg = O.Registry.create () in
  (try
     O.Registry.Span.time ~registry:reg "boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "stack unwound" 0 (O.Registry.Span.depth reg);
  match O.Registry.find reg "boom" with
  | Some (O.Registry.Span_m h) ->
      Alcotest.(check int) "duration still recorded" 1 (O.Histogram.count h)
  | _ -> Alcotest.fail "span not registered"

let test_span_duration () =
  with_fake_clock @@ fun () ->
  let reg = O.Registry.create () in
  O.Registry.Span.time ~registry:reg "s" (fun () -> ());
  match O.Registry.find reg "s" with
  | Some (O.Registry.Span_m h) ->
      (* fake clock: 1us per read, one read on entry and one on exit *)
      Alcotest.(check (float 1e-12)) "measured 1us" 1e-6 (O.Histogram.sum h)
  | _ -> Alcotest.fail "span not registered"

(* --- journal ------------------------------------------------------------- *)

let test_memory_sink () =
  let reg = O.Registry.create () in
  Alcotest.(check bool) "no sinks initially" false (O.Registry.has_sinks reg);
  let sink, drain = O.Registry.memory_sink () in
  O.Registry.add_sink reg sink;
  Alcotest.(check bool) "sink attached" true (O.Registry.has_sinks reg);
  O.Registry.emit reg ~name:"ev" [ ("k", O.Json.Int 1) ];
  O.Registry.emit reg ~name:"ev2" [];
  match drain () with
  | [ e1; e2 ] ->
      Alcotest.(check string) "order kept" "ev" e1.O.Event.ev_name;
      Alcotest.(check string) "second" "ev2" e2.O.Event.ev_name;
      Alcotest.(check bool)
        "fields survive" true
        (e1.O.Event.ev_fields = [ ("k", O.Json.Int 1) ])
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let test_json_escaping () =
  Alcotest.(check string)
    "escapes" {|"a\"b\\c\n"|}
    (O.Json.to_string (O.Json.String "a\"b\\c\n"));
  Alcotest.(check string)
    "non-finite is null" "null"
    (O.Json.to_string (O.Json.Float Float.nan));
  Alcotest.(check string)
    "object" {|{"a":1,"b":[true,null]}|}
    (O.Json.to_string
       (O.Json.Obj
          [
            ("a", O.Json.Int 1);
            ("b", O.Json.List [ O.Json.Bool true; O.Json.Null ]);
          ]))

let test_registry_export () =
  let reg = O.Registry.create () in
  O.Counter.inc (O.Registry.counter reg "c");
  O.Gauge.set (O.Registry.gauge reg "g") 2.0;
  O.Registry.Span.time ~registry:reg "s" (fun () -> ());
  let json = O.Json.to_string (O.Registry.to_json reg) in
  List.iter
    (fun frag ->
      Alcotest.(check bool)
        (Printf.sprintf "export has %s" frag)
        true
        (contains json frag))
    [ {|"counters":{"c":1.0}|}; {|"gauges":{"g":2.0}|}; {|"spans":{"s":|}; {|"p99_s"|} ];
  O.Registry.reset reg;
  Alcotest.(check int) "reset drops metrics" 0
    (List.length (O.Registry.metrics reg))

(* --- engine integration -------------------------------------------------- *)

let test_engine_emits_stages () =
  let reg = O.Registry.create () in
  let config =
    S.Engine.make_config ~cycle_s:60 ~duration_s:60 ~start_s:(18 * 3600)
      ~seed:3 ()
  in
  let engine = S.Engine.create ~config ~obs:reg N.Scenario.tiny in
  ignore (S.Engine.step engine);
  let span_count name =
    match O.Registry.find reg name with
    | Some (O.Registry.Span_m h) -> O.Histogram.count h
    | _ -> 0
  in
  let counter_value name =
    match O.Registry.find reg name with
    | Some (O.Registry.Counter_m c) -> O.Counter.value c
    | _ -> -1.0
  in
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " recorded once") 1 (span_count name))
    [
      "engine.step";
      "engine.demand";
      "engine.estimate";
      "engine.controller";
      "engine.placement";
      "engine.accounting";
      "controller.cycle";
      "controller.allocate";
      "controller.guard.clamp";
      "controller.reconcile";
      "controller.project";
      "controller.guard.audit";
    ];
  (* of_pop runs once for the controller view and once for ground truth *)
  Alcotest.(check int) "snapshot assembled twice" 2
    (span_count "collector.assemble");
  Alcotest.(check (float 0.0)) "one step" 1.0 (counter_value "engine.steps");
  Alcotest.(check (float 0.0))
    "one controller cycle" 1.0
    (counter_value "controller.cycles");
  ignore (S.Engine.step engine);
  Alcotest.(check (float 0.0)) "deltas accumulate" 2.0
    (counter_value "controller.cycles")

let test_engine_journal () =
  let reg = O.Registry.create () in
  let sink, drain = O.Registry.memory_sink () in
  O.Registry.add_sink reg sink;
  let config =
    S.Engine.make_config ~cycle_s:60 ~duration_s:60 ~start_s:(18 * 3600)
      ~seed:3 ()
  in
  let engine = S.Engine.create ~config ~obs:reg N.Scenario.tiny in
  ignore (S.Engine.step engine);
  let names = List.map (fun e -> e.O.Event.ev_name) (drain ()) in
  Alcotest.(check (list string))
    "one controller event then one engine event"
    [ "controller.cycle"; "engine.step" ]
    names

(* --- Registry.merge: the fleet fold-back after a parallel run ----------- *)

let test_registry_merge_semantics () =
  let a = O.Registry.create () and b = O.Registry.create () in
  O.Counter.add (O.Registry.counter a "pops") 2.0;
  O.Counter.add (O.Registry.counter b "pops") 3.0;
  O.Gauge.set (O.Registry.gauge a "offered") 10.0;
  O.Gauge.set (O.Registry.gauge b "offered") 4.0;
  let ha = O.Registry.histogram a "util" in
  O.Histogram.observe ha 0.5;
  O.Histogram.observe ha 0.7;
  let hb = O.Registry.histogram b "util" in
  O.Histogram.observe hb 0.9;
  (* b also carries a metric a has never seen *)
  O.Counter.inc (O.Registry.counter b "only-in-b");
  O.Registry.merge ~into:a b;
  Alcotest.(check (float 1e-9)) "counters add" 5.0
    (O.Counter.value (O.Registry.counter a "pops"));
  Alcotest.(check (float 1e-9)) "gauges sum (fleet totals)" 14.0
    (O.Gauge.value (O.Registry.gauge a "offered"));
  Alcotest.(check int) "histogram samples append" 3 (O.Histogram.count ha);
  Alcotest.(check (float 1e-9)) "fresh name copied" 1.0
    (O.Counter.value (O.Registry.counter a "only-in-b"));
  (* source is untouched *)
  Alcotest.(check (float 1e-9)) "source intact" 3.0
    (O.Counter.value (O.Registry.counter b "pops"))

let test_registry_merge_deterministic () =
  (* merging equal sources in the same order yields equal registries —
     the property Fleet.run's determinism contract leans on *)
  let mk () =
    let r = O.Registry.create () in
    O.Counter.add (O.Registry.counter r "c") 1.5;
    O.Histogram.observe (O.Registry.histogram r "h") 0.25;
    r
  in
  let into1 = O.Registry.create () and into2 = O.Registry.create () in
  List.iter (fun src -> O.Registry.merge ~into:into1 src) [ mk (); mk () ];
  List.iter (fun src -> O.Registry.merge ~into:into2 src) [ mk (); mk () ];
  Alcotest.(check string) "identical JSON export"
    (O.Json.to_string (O.Registry.to_json into1))
    (O.Json.to_string (O.Registry.to_json into2))

let test_registry_merge_kind_collision () =
  let a = O.Registry.create () and b = O.Registry.create () in
  O.Counter.inc (O.Registry.counter a "x");
  O.Gauge.set (O.Registry.gauge b "x") 1.0;
  (match O.Registry.merge ~into:a b with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

(* regression: histogram append across merges is bounded. Beyond
   Histogram.merge_cap retained samples the merge reservoir-downsamples
   deterministically, count/sum/mean stay exact over everything ever
   observed, and the shortfall is surfaced on the
   obs.merge.dropped_samples counter in the target. *)
let test_registry_merge_histogram_cap () =
  let cap = O.Histogram.merge_cap in
  let mk n base =
    let r = O.Registry.create () in
    let h = O.Registry.histogram r "h" in
    for i = 1 to n do
      O.Histogram.observe h (base +. float_of_int i)
    done;
    r
  in
  let into = O.Registry.create () in
  let n = (cap / 2) + 1000 in
  O.Registry.merge ~into (mk n 0.0);
  O.Registry.merge ~into (mk n 1000000.0);
  let h = O.Registry.histogram into "h" in
  Alcotest.(check int) "count is exact" (2 * n) (O.Histogram.count h);
  Alcotest.(check int) "retention capped" cap (O.Histogram.retained h);
  Alcotest.(check int) "drops accounted" ((2 * n) - cap)
    (O.Histogram.dropped h);
  let exact_sum =
    let tri n = float_of_int (n * (n + 1) / 2) in
    tri n +. (tri n +. (1000000.0 *. float_of_int n))
  in
  Alcotest.(check (float 1.0)) "sum stays exact" exact_sum (O.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "dropped counter mirrors it"
    (float_of_int ((2 * n) - cap))
    (O.Counter.value (O.Registry.counter into "obs.merge.dropped_samples"));
  (* and the downsampling is deterministic: same sources, same order,
     byte-identical export *)
  let redo () =
    let into = O.Registry.create () in
    O.Registry.merge ~into (mk n 0.0);
    O.Registry.merge ~into (mk n 1000000.0);
    O.Json.to_string (O.Registry.to_json into)
  in
  Alcotest.(check string) "reservoir deterministic" (redo ()) (redo ())

(* below the cap, merge still appends every sample and the dropped
   counter never appears — the pre-cap behavior is unchanged *)
let test_registry_merge_no_spurious_drops () =
  let into = O.Registry.create () and src = O.Registry.create () in
  let h = O.Registry.histogram src "h" in
  for i = 1 to 1000 do
    O.Histogram.observe h (float_of_int i)
  done;
  O.Registry.merge ~into src;
  let hm = O.Registry.histogram into "h" in
  Alcotest.(check int) "all retained" 1000 (O.Histogram.retained hm);
  Alcotest.(check int) "no drops" 0 (O.Histogram.dropped hm);
  Alcotest.(check bool) "no dropped-samples counter registered" true
    (O.Registry.find into "obs.merge.dropped_samples" = None)

let test_registry_dispatch_replays () =
  let reg = O.Registry.create () in
  let seen = ref [] in
  O.Registry.add_sink reg (fun ev -> seen := ev :: !seen);
  let buffered, _flush = O.Registry.memory_sink () in
  (* replay pre-stamped events through the sinks, as Fleet.run does with
     per-engine buffers after the barrier *)
  let src = O.Registry.create () in
  O.Registry.add_sink src buffered;
  O.Registry.emit src ~name:"cycle.start" [ ("pop", O.Json.String "tiny") ];
  O.Registry.emit src ~name:"cycle.done" [];
  List.iter (fun ev -> O.Registry.dispatch reg ev) (_flush ());
  Alcotest.(check int) "both events arrived" 2 (List.length !seen);
  Alcotest.(check string) "order preserved" "cycle.start"
    (match List.rev !seen with
    | ev :: _ -> ev.O.Registry.Event.ev_name
    | [] -> "")

(* --- Prom rendering edge cases ------------------------------------------ *)

(* every escapable character in a label value: backslash first (so the
   others aren't double-escaped), then quote and newline *)
let test_prom_label_escaping () =
  let fam =
    {
      O.Prom.fam_name = "m";
      fam_help = "h";
      fam_kind = O.Prom.Gauge;
      fam_samples =
        [ O.Prom.sample ~labels:[ ("l", "a\\b\"c\nd") ] 1.0 ];
    }
  in
  let out = O.Prom.render [ fam ] in
  Alcotest.(check bool) "backslash, quote, newline escaped" true
    (contains out "m{l=\"a\\\\b\\\"c\\nd\"} 1.0\n")

(* distinct family names that sanitize to the same exposition name merge
   under one declaration: HELP/TYPE once (first wins), every sample kept —
   never a duplicate TYPE line, which trips OpenMetrics linting *)
let test_prom_sanitize_collision () =
  let fam name help v =
    {
      O.Prom.fam_name = name;
      fam_help = help;
      fam_kind = O.Prom.Gauge;
      fam_samples = [ O.Prom.sample ~labels:[ ("src", name) ] v ];
    }
  in
  let out =
    O.Prom.render [ fam "health.state" "dotted" 1.0; fam "health_state" "underscored" 2.0 ]
  in
  let count_needle needle =
    let n = String.length needle and h = String.length out in
    let rec go i acc =
      if i + n > h then acc
      else go (i + 1) (if String.sub out i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "one TYPE declaration" 1
    (count_needle "# TYPE health_state gauge");
  Alcotest.(check int) "one HELP declaration" 1 (count_needle "# HELP health_state");
  Alcotest.(check bool) "first HELP wins" true (contains out "dotted");
  Alcotest.(check bool) "both samples render" true
    (contains out "health_state{src=\"health.state\"} 1.0\n"
    && contains out "health_state{src=\"health_state\"} 2.0\n")

(* fuzz: arbitrary metric/label names and values never produce output
   that breaks the line discipline — every non-comment, non-blank line is
   `name{labels} value` on exactly one line with a sane name *)
let prom_fuzz =
  let arb =
    QCheck.(
      pair (pair printable_string printable_string)
        (pair (list (pair printable_string printable_string)) float))
  in
  QCheck.Test.make ~name:"prom render survives arbitrary names and labels"
    ~count:200 arb
    (fun ((name, help), (labels, value)) ->
      let fam =
        {
          O.Prom.fam_name = name;
          fam_help = help;
          fam_kind = O.Prom.Counter;
          fam_samples = [ O.Prom.sample ~suffix:"_total" ~labels value ];
        }
      in
      let out = O.Prom.render [ fam ] in
      let ok_name_char c =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      String.split_on_char '\n' out
      |> List.for_all (fun line ->
             line = ""
             || String.length line >= 1
                && (line.[0] = '#'
                   || ok_name_char line.[0]
                      && (not (String.contains line '\r'))
                      && String.contains line ' ')))

(* golden: the full exposition of a fixed registry + extra families is
   pinned byte for byte; regenerate with
   GOLDEN_UPDATE=1 dune exec test/main.exe -- test obs *)
let test_prom_golden () =
  let reg = O.Registry.create () in
  O.Counter.add (O.Registry.counter reg "engine.steps") 42.0;
  O.Gauge.set (O.Registry.gauge reg "offered.bps") 1.5e9;
  let h = O.Registry.histogram reg "cycle.wall_s" in
  List.iter (O.Histogram.observe h) [ 0.25; 0.5; 0.125 ];
  ignore (O.Registry.histogram reg "empty.hist");
  O.Histogram.observe (O.Registry.span reg "controller.cycle") 0.033;
  let extra =
    [
      {
        O.Prom.fam_name = "health_state";
        fam_help = "controller health state (1 = current)";
        fam_kind = O.Prom.Gauge;
        fam_samples =
          [
            O.Prom.sample ~labels:[ ("state", "healthy") ] 1.0;
            O.Prom.sample ~labels:[ ("state", "degraded") ] 0.0;
          ];
      };
      {
        O.Prom.fam_name = "alerts_fired";
        fam_help = "alert firings with \"quoted\\escaped\nnewline\" labels";
        fam_kind = O.Prom.Counter;
        fam_samples =
          [
            O.Prom.sample ~suffix:"_total"
              ~labels:[ ("rule", "guard\\violation\n\"p99\"") ]
              3.0;
          ];
      };
    ]
  in
  let out = O.Prom.of_registry ~extra reg in
  let path =
    let candidates = [ "golden/metrics.prom"; "test/golden/metrics.prom" ] in
    match List.find_opt (fun p -> Sys.file_exists (Filename.dirname p)) candidates with
    | Some p -> p
    | None -> Alcotest.fail "no golden directory found"
  in
  if Sys.getenv_opt "GOLDEN_UPDATE" = Some "1" then begin
    let oc = open_out_bin path in
    output_string oc out;
    close_out oc
  end
  else if not (Sys.file_exists path) then
    Alcotest.failf
      "missing golden file %s — create it with GOLDEN_UPDATE=1 dune exec \
       test/main.exe -- test obs"
      path
  else begin
    let ic = open_in_bin path in
    let expected = really_input_string ic (in_channel_length ic) in
    close_in ic;
    if not (String.equal expected out) then
      Alcotest.failf
        "OpenMetrics exposition differs from %s; if intentional, regenerate \
         with GOLDEN_UPDATE=1 dune exec test/main.exe -- test obs"
        path
  end

let suite =
  [
    Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
    Alcotest.test_case "get-or-create handles" `Quick test_get_or_create;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span unwinds on exception" `Quick
      test_span_unwinds_on_exception;
    Alcotest.test_case "span duration" `Quick test_span_duration;
    Alcotest.test_case "memory sink" `Quick test_memory_sink;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "registry export + reset" `Quick test_registry_export;
    Alcotest.test_case "engine emits stage spans" `Quick
      test_engine_emits_stages;
    Alcotest.test_case "engine journal events" `Quick test_engine_journal;
    Alcotest.test_case "registry merge semantics" `Quick
      test_registry_merge_semantics;
    Alcotest.test_case "registry merge deterministic" `Quick
      test_registry_merge_deterministic;
    Alcotest.test_case "registry merge kind collision" `Quick
      test_registry_merge_kind_collision;
    Alcotest.test_case "registry merge histogram cap (reservoir)" `Quick
      test_registry_merge_histogram_cap;
    Alcotest.test_case "registry merge below cap unchanged" `Quick
      test_registry_merge_no_spurious_drops;
    Alcotest.test_case "registry dispatch replays" `Quick
      test_registry_dispatch_replays;
    Alcotest.test_case "prom label escaping" `Quick test_prom_label_escaping;
    Alcotest.test_case "prom sanitize collision dedupe" `Quick
      test_prom_sanitize_collision;
    Alcotest.test_case "prom exposition golden" `Quick test_prom_golden;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prom_fuzz ]
