(* ef_traffic: Demand, Flow, Sflow, Rate_est *)

module Bgp = Ef_bgp
module N = Ef_netsim
module T = Ef_traffic
open Helpers

let world = lazy (N.Topo_gen.generate N.Topo_gen.small_config)

let demand ?events ?(seed = 5) () =
  let w = Lazy.force world in
  T.Demand.create ?events ~prefix_weight:w.N.Topo_gen.prefix_weight
    ~origin_region:w.N.Topo_gen.origin_region
    ~total_peak_bps:w.N.Topo_gen.total_peak_bps ~seed ()

let a_prefix () = List.hd (Lazy.force world).N.Topo_gen.all_prefixes

let test_diurnal_range () =
  List.iter
    (fun region ->
      for h = 0 to 23 do
        let f = T.Demand.diurnal_factor region ~time_s:(h * 3600) in
        if f < 0.349 || f > 1.001 then Alcotest.failf "factor %f out of range" f
      done)
    N.Region.all

let test_diurnal_peak_at_nine_pm_local () =
  let region = N.Region.Europe in
  (* local 21:00 = utc 20:00 for our Europe offset (+1) *)
  let peak = T.Demand.diurnal_factor region ~time_s:(20 * 3600) in
  Helpers.check_float_eps 1e-6 "peak is 1.0" 1.0 peak;
  let trough = T.Demand.diurnal_factor region ~time_s:(8 * 3600) in
  Helpers.check_float_eps 1e-6 "trough is 0.35" 0.35 trough

let test_demand_deterministic () =
  let d1 = demand () and d2 = demand () in
  let p = a_prefix () in
  for t = 0 to 10 do
    Helpers.check_float "same rate"
      (T.Demand.rate_bps d1 p ~time_s:(t * 997))
      (T.Demand.rate_bps d2 p ~time_s:(t * 997))
  done

let test_demand_proportional_to_weight () =
  let w = Lazy.force world in
  let d = demand () in
  (* zero-weight prefix -> zero demand *)
  let unknown = prefix "1.2.3.0/24" in
  Helpers.check_float "unknown prefix" 0.0 (T.Demand.rate_bps d unknown ~time_s:0);
  (* total demand is within jitter of peak * diurnal mix *)
  let total = T.Demand.total_rate_bps d ~prefixes:w.N.Topo_gen.all_prefixes ~time_s:0 in
  Alcotest.(check bool) "positive" true (total > 0.0);
  Alcotest.(check bool) "within jitter of peak" true
    (total <= 1.1 *. w.N.Topo_gen.total_peak_bps)

let test_demand_flash_crowd () =
  let p = a_prefix () in
  let event =
    { T.Demand.event_prefix = p; start_s = 1000; duration_s = 500; multiplier = 3.0 }
  in
  let base = demand () in
  let boosted = demand ~events:[ event ] () in
  let inside = T.Demand.rate_bps boosted p ~time_s:1200 in
  let inside_base = T.Demand.rate_bps base p ~time_s:1200 in
  Helpers.check_float_eps 1e-6 "3x inside window" (3.0 *. inside_base) inside;
  Helpers.check_float "same before" (T.Demand.rate_bps base p ~time_s:999)
    (T.Demand.rate_bps boosted p ~time_s:999);
  Helpers.check_float "same after" (T.Demand.rate_bps base p ~time_s:1500)
    (T.Demand.rate_bps boosted p ~time_s:1500)

let test_demand_jitter_bounded () =
  let d = demand () in
  let w = Lazy.force world in
  let p = a_prefix () in
  let weight = w.N.Topo_gen.prefix_weight p in
  for block = 0 to 50 do
    let t = block * 300 in
    let rate = T.Demand.rate_bps d p ~time_s:t in
    let nominal =
      weight *. w.N.Topo_gen.total_peak_bps
      *. T.Demand.diurnal_factor (w.N.Topo_gen.origin_region p) ~time_s:t
    in
    let ratio = rate /. nominal in
    if ratio < 0.899 || ratio > 1.101 then Alcotest.failf "jitter %f" ratio
  done

(* --- Flow ------------------------------------------------------------- *)

let test_flow_conserves_bytes () =
  let rng = Ef_util.Rng.create 3 in
  let flows =
    T.Flow.generate rng ~prefix:(prefix "10.0.0.0/24") ~rate_bps:8e6
      ~interval_s:10.0 ~max_flows:50
  in
  let expect = int_of_float (8e6 *. 10.0 /. 8.0) in
  let got = T.Flow.total_bytes flows in
  (* rounding may lose up to one byte per flow *)
  Alcotest.(check bool) "bytes conserved" true
    (abs (got - expect) <= List.length flows + 1);
  Alcotest.(check bool) "capped" true (List.length flows <= 50)

let test_flow_clients_in_prefix () =
  let rng = Ef_util.Rng.create 4 in
  let p = prefix "10.1.2.0/24" in
  let flows = T.Flow.generate rng ~prefix:p ~rate_bps:1e6 ~interval_s:5.0 ~max_flows:20 in
  Alcotest.(check bool) "nonempty" true (flows <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "client inside" true (Bgp.Prefix.mem f.T.Flow.client p))
    flows

let test_flow_zero_rate () =
  let rng = Ef_util.Rng.create 5 in
  Alcotest.(check int) "no flows" 0
    (List.length
       (T.Flow.generate rng ~prefix:(prefix "10.0.0.0/24") ~rate_bps:0.0
          ~interval_s:30.0 ~max_flows:10))

(* --- Sflow ------------------------------------------------------------ *)

let test_sflow_estimate_unbiased () =
  let config = { T.Sflow.sampling_rate = 128; interval_s = 30.0 } in
  let rng = Ef_util.Rng.create 6 in
  let p = prefix "10.0.0.0/24" in
  let true_rate = 50e6 in
  let n = 300 in
  let total = ref 0.0 in
  for _ = 1 to n do
    let s = T.Sflow.sample_rate config rng ~prefix:p ~rate_bps:true_rate in
    total := !total +. T.Sflow.estimate_rate_bps config s
  done;
  let mean = !total /. float_of_int n in
  let err = Float.abs (mean -. true_rate) /. true_rate in
  if err > 0.05 then Alcotest.failf "estimator bias %f" err

let test_sflow_flow_level_vs_statistical () =
  (* the faithful flow-level pipeline and the fast path must agree on the
     expected sampled-packet count *)
  let config = { T.Sflow.sampling_rate = 64; interval_s = 10.0 } in
  let rng = Ef_util.Rng.create 7 in
  let p = prefix "10.0.0.0/24" in
  let rate = 100e6 in
  let n = 100 in
  let flow_hits = ref 0 and stat_hits = ref 0 in
  for _ = 1 to n do
    let flows = T.Flow.generate rng ~prefix:p ~rate_bps:rate ~interval_s:10.0 ~max_flows:500 in
    List.iter
      (fun (s : T.Sflow.sample) -> flow_hits := !flow_hits + s.T.Sflow.sampled_packets)
      (T.Sflow.sample_flows config rng flows);
    let s = T.Sflow.sample_rate config rng ~prefix:p ~rate_bps:rate in
    stat_hits := !stat_hits + s.T.Sflow.sampled_packets
  done;
  let ratio = float_of_int !flow_hits /. float_of_int (max 1 !stat_hits) in
  if ratio < 0.9 || ratio > 1.1 then Alcotest.failf "pipelines disagree: %f" ratio

let test_sflow_thin_prefix_can_vanish () =
  (* a prefix whose expected sample count is far below 1 will often
     produce zero samples — the visibility loss the EWMA must smooth *)
  let config = T.Sflow.default_config in
  let rng = Ef_util.Rng.create 8 in
  let p = prefix "10.0.0.0/24" in
  let zeros = ref 0 in
  for _ = 1 to 100 do
    let s = T.Sflow.sample_rate config rng ~prefix:p ~rate_bps:10_000.0 in
    if s.T.Sflow.sampled_packets = 0 then incr zeros
  done;
  Alcotest.(check bool) "mostly invisible" true (!zeros > 50)

(* --- Rate_est ---------------------------------------------------------- *)

let test_rate_est_tracks () =
  let config = { T.Sflow.sampling_rate = 1; interval_s = 1.0 } in
  let est = T.Rate_est.create ~alpha:1.0 config in
  let p = prefix "10.0.0.0/24" in
  (* alpha=1: estimate equals the last interval's scaled sample *)
  T.Rate_est.observe est [ { T.Sflow.sample_prefix = p; sampled_packets = 125 } ];
  T.Rate_est.tick_absent est;
  Helpers.check_float "tracks exactly" (125.0 *. 8000.0) (T.Rate_est.estimate_bps est p)

let test_rate_est_decays_absent () =
  let config = { T.Sflow.sampling_rate = 1; interval_s = 1.0 } in
  let est = T.Rate_est.create ~alpha:0.5 config in
  let p = prefix "10.0.0.0/24" in
  T.Rate_est.observe est [ { T.Sflow.sample_prefix = p; sampled_packets = 100 } ];
  T.Rate_est.tick_absent est;
  let before = T.Rate_est.estimate_bps est p in
  (* two silent intervals *)
  T.Rate_est.tick_absent est;
  T.Rate_est.tick_absent est;
  let after = T.Rate_est.estimate_bps est p in
  Alcotest.(check bool) "decayed" true (after < before /. 2.0)

let test_rate_est_drop_below () =
  let config = { T.Sflow.sampling_rate = 1; interval_s = 1.0 } in
  let est = T.Rate_est.create config in
  T.Rate_est.observe est
    [ { T.Sflow.sample_prefix = prefix "10.0.0.0/24"; sampled_packets = 1 } ];
  Alcotest.(check int) "tracked" 1 (T.Rate_est.tracked est);
  T.Rate_est.drop_below est 1e12;
  Alcotest.(check int) "dropped" 0 (T.Rate_est.tracked est)

let test_rate_est_snapshot_sorted () =
  let config = { T.Sflow.sampling_rate = 1; interval_s = 1.0 } in
  let est = T.Rate_est.create ~alpha:1.0 config in
  T.Rate_est.observe est
    [
      { T.Sflow.sample_prefix = prefix "10.0.0.0/24"; sampled_packets = 10 };
      { T.Sflow.sample_prefix = prefix "10.0.1.0/24"; sampled_packets = 99 };
      { T.Sflow.sample_prefix = prefix "10.0.2.0/24"; sampled_packets = 50 };
    ];
  let snap = T.Rate_est.snapshot est in
  Alcotest.(check int) "three" 3 (List.length snap);
  let rates = List.map snd snap in
  Alcotest.(check bool) "descending" true
    (rates = List.sort (fun a b -> compare b a) rates)

let test_rate_est_snapshot_tie_break () =
  (* equal rates order by prefix ascending — the same total order as
     Projection.compare_placement, so a snapshot is one canonical list
     regardless of hash-table iteration order *)
  let config = { T.Sflow.sampling_rate = 1; interval_s = 1.0 } in
  let est = T.Rate_est.create ~alpha:1.0 config in
  let ps = [ "10.0.2.0/24"; "10.0.0.0/24"; "10.0.1.0/24" ] in
  T.Rate_est.observe est
    (List.map
       (fun p -> { T.Sflow.sample_prefix = prefix p; sampled_packets = 50 })
       ps);
  let snap = T.Rate_est.snapshot est in
  Alcotest.(check (list string)) "ties broken by prefix ascending"
    [ "10.0.0.0/24"; "10.0.1.0/24"; "10.0.2.0/24" ]
    (List.map (fun (p, _) -> Format.asprintf "%a" Bgp.Prefix.pp p) snap)

let suite =
  [
    Alcotest.test_case "diurnal range" `Quick test_diurnal_range;
    Alcotest.test_case "diurnal peak 21:00 local" `Quick
      test_diurnal_peak_at_nine_pm_local;
    Alcotest.test_case "demand deterministic" `Quick test_demand_deterministic;
    Alcotest.test_case "demand weight proportional" `Quick
      test_demand_proportional_to_weight;
    Alcotest.test_case "demand flash crowd" `Quick test_demand_flash_crowd;
    Alcotest.test_case "demand jitter bounded" `Quick test_demand_jitter_bounded;
    Alcotest.test_case "flow conserves bytes" `Quick test_flow_conserves_bytes;
    Alcotest.test_case "flow clients in prefix" `Quick test_flow_clients_in_prefix;
    Alcotest.test_case "flow zero rate" `Quick test_flow_zero_rate;
    Alcotest.test_case "sflow estimator unbiased" `Quick test_sflow_estimate_unbiased;
    Alcotest.test_case "sflow flow-level agrees" `Quick
      test_sflow_flow_level_vs_statistical;
    Alcotest.test_case "sflow thin prefixes vanish" `Quick
      test_sflow_thin_prefix_can_vanish;
    Alcotest.test_case "rate_est tracks" `Quick test_rate_est_tracks;
    Alcotest.test_case "rate_est decays absent" `Quick test_rate_est_decays_absent;
    Alcotest.test_case "rate_est drop below" `Quick test_rate_est_drop_below;
    Alcotest.test_case "rate_est snapshot sorted" `Quick
      test_rate_est_snapshot_sorted;
    Alcotest.test_case "rate_est snapshot tie-break" `Quick
      test_rate_est_snapshot_tie_break;
  ]
