(* The end-to-end incremental pin (e13's correctness half at unit
   scale): a controller with [Config.incremental] on, fed a
   {!Snapshot.patch} delta chain, must match — byte for byte — a cold
   controller recomputing every cycle from freshly assembled snapshots
   of the same content. 100+ seeded worlds × churn sequences covering
   rate shifts, prefix withdraw/re-announce, candidate-route
   invalidation and Ef_fault capacity derates; compared per cycle on
   enforced overrides, totals, residuals, stale lists and per-interface
   loads, and at the end on full provenance-trace bytes. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
module Trace = Ef_trace.Recorder
module Rng = Ef_util.Rng

let trace_bytes tr = Ef_obs.Json.to_string (Trace.to_json tr)

let override_list : Ef.Override.t list Alcotest.testable =
  Alcotest.testable (Fmt.Dump.list Ef.Override.pp) (fun a b -> a = b)

let loads_of proj ifaces =
  List.map
    (fun i ->
      (N.Iface.id i, Ef.Projection.load_bps proj ~iface_id:(N.Iface.id i)))
    ifaces

let iface_floats l = List.map (fun (i, u) -> (N.Iface.id i, u)) l

(* the config axes the incremental machinery interacts with: the
   allocator visiting order shapes the pre-relief image's consumption,
   split-24 adds synthetic placements the enforced derivation must not
   trip on, and a tight budget keeps overrides churning cycle to cycle *)
let configs =
  [|
    ("default", Ef.Config.default);
    ("smallest-first", Ef.Config.(default |> with_order Smallest_first));
    ( "split-24",
      Ef.Config.(
        default |> with_granularity Split_24 |> with_overload_threshold 0.85)
    );
    ("budget-2", Ef.Config.(default |> with_max_overrides_per_cycle (Some 2)));
  |]

(* One seeded world driven [cycles] controller cycles in lockstep: the
   incremental side advances a Snapshot.patch delta chain; the reference
   side reassembles every snapshot from scratch and runs with
   incremental recomputation disabled. *)
let run_lockstep ?(shards = 1) ?(flap = false) ~seed ~cycles () =
  let cycle_s = 30 in
  let cfg_name, config = configs.(seed mod Array.length configs) in
  let w = Gen.world (2000 + seed) in
  let pop = w.N.Topo_gen.pop in
  let rib = N.Pop.rib pop in
  (* fault plan: one interface loses capacity over the middle cycles, so
     the warm path crosses capacity-only interface changes; with [flap]
     a second interface goes fully down and comes back repeatedly, so it
     also crosses interface removals and re-additions *)
  let iface_ids = List.map N.Iface.id (N.Pop.interfaces pop) in
  let derated_id = List.nth iface_ids (seed mod List.length iface_ids) in
  let flap_id = List.nth iface_ids ((seed + 1) mod List.length iface_ids) in
  let inj =
    Ef_fault.Injector.create
      (Ef_fault.Plan.make ~seed:(seed lxor 0xFA)
         (Ef_fault.Plan.Capacity_degradation
            {
              iface_id = derated_id;
              from_s = 2 * cycle_s;
              until_s = (cycles - 1) * cycle_s;
              factor = 0.5 +. (0.1 *. float_of_int (seed mod 4));
            }
         ::
         (if flap then
            [
              Ef_fault.Plan.Link_flap
                {
                  iface_id = flap_id;
                  from_s = 2 * cycle_s;
                  until_s = (cycles - 1) * cycle_s;
                  period_s = 4 * cycle_s;
                  down_s = 2 * cycle_s;
                };
            ]
          else [])))
  in
  let ifaces_at time_s =
    let live =
      List.filter
        (fun i ->
          not (Ef_fault.Injector.link_down inj ~iface_id:(N.Iface.id i) ~time_s))
        (N.Pop.interfaces pop)
    in
    Gen.derate_ifaces live ~factor_of:(fun iface_id ->
        Ef_fault.Injector.capacity_factor inj ~iface_id ~time_s)
  in
  (* route churn: prefixes whose current best announcement is withdrawn.
     Toggled per cycle; both sides see the same closure, the patch chain
     learns of a toggle only through [routes_changed]. *)
  let best_gone : (Bgp.Prefix.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let routes p =
    let rs = Bgp.Rib.ranked rib p in
    if Hashtbl.mem best_gone p then match rs with [] -> [] | _ :: tl -> tl
    else rs
  in
  let iface_of_peer ifaces peer_id =
    match N.Pop.peer pop peer_id with
    | None -> None
    | Some _ ->
        let id = N.Iface.id (N.Pop.iface_of_peer pop ~peer_id) in
        List.find_opt (fun i -> N.Iface.id i = id) ifaces
  in
  (* demand model shared by both sides: absolute rates, absent = withdrawn *)
  let base =
    Array.of_list
      (Gen.rates_of_world
         ~rate_factor:(0.85 +. (0.1 *. float_of_int (seed mod 4)))
         w)
  in
  let model : (Bgp.Prefix.t, float) Hashtbl.t = Hashtbl.create 64 in
  Array.iter (fun (p, r) -> Hashtbl.replace model p r) base;
  let assemble time_s =
    let ifaces = ifaces_at time_s in
    C.Snapshot.assemble
      ~obs:(Ef_obs.Registry.create ())
      ~routes
      ~iface_of_peer:(iface_of_peer ifaces)
      ~ifaces
      ~prefix_rates:(Hashtbl.fold (fun p r acc -> (p, r) :: acc) model [])
      ~time_s ()
  in
  let tr_incr = Trace.create () and tr_cold = Trace.create () in
  (* [shards] applies to the incremental side only: the cold reference
     stays serial, so at shards > 1 the pin also proves the sharded
     fan-out equals the serial pipeline byte for byte *)
  let incr =
    Ef.Controller.create
      ~config:(Ef.Config.with_shards shards config)
      ~obs:(Ef_obs.Registry.create ())
      ~trace:tr_incr ~name:"pin" ()
  in
  let cold =
    Ef.Controller.create
      ~config:(Ef.Config.with_incremental false config)
      ~obs:(Ef_obs.Registry.create ())
      ~trace:tr_cold ~name:"pin" ()
  in
  let snap = ref (assemble 0) in
  let down_cycles = ref 0 and up_after_down = ref 0 in
  for cycle = 0 to cycles - 1 do
    let time_s = cycle * cycle_s in
    (if flap then
       let here =
         List.exists (fun i -> N.Iface.id i = flap_id) (ifaces_at time_s)
       in
       if not here then Stdlib.incr down_cycles
       else if !down_cycles > 0 then Stdlib.incr up_after_down);
    if cycle > 0 then begin
      (* deterministic churn: rate scales, withdraw/re-announce, and
         best-route toggles — a pure function of (seed, cycle) *)
      let rng = Rng.create ((seed * 0x9E37) lxor cycle) in
      let n = Array.length base in
      let touched = Hashtbl.create 16 in
      let k = 1 + Rng.int rng (max 1 (n / 6)) in
      for _ = 1 to k do
        let i = Rng.int rng n in
        let p, base_r = base.(i) in
        if not (Hashtbl.mem touched p) then
          let r =
            if Rng.chance rng 0.15 then 0.0 (* withdraw *)
            else base_r *. (0.5 +. Rng.float rng 1.0)
          in
          Hashtbl.replace touched p r
      done;
      let routes_changed = ref [] in
      for _ = 1 to Rng.int rng 3 do
        let p, _ = base.(Rng.int rng n) in
        if not (List.exists (Bgp.Prefix.equal p) !routes_changed) then begin
          if Hashtbl.mem best_gone p then Hashtbl.remove best_gone p
          else Hashtbl.replace best_gone p ();
          routes_changed := p :: !routes_changed
        end
      done;
      let rate_updates =
        Hashtbl.fold (fun p r acc -> (p, r) :: acc) touched []
      in
      List.iter
        (fun (p, r) ->
          if r <= 0.0 then Hashtbl.remove model p
          else Hashtbl.replace model p r)
        rate_updates;
      snap :=
        C.Snapshot.patch
          ~obs:(Ef_obs.Registry.create ())
          ~prev:!snap ~routes ~ifaces:(ifaces_at time_s)
          ~routes_changed:!routes_changed ~rate_updates ~time_s ()
    end;
    let s_incr = Ef.Controller.cycle incr !snap in
    let s_cold = Ef.Controller.cycle cold (assemble time_s) in
    let ctx = Printf.sprintf "seed %d (%s) cycle %d" seed cfg_name cycle in
    Alcotest.check override_list (ctx ^ ": enforced overrides")
      (Ef.Controller.overrides_enforced s_cold)
      (Ef.Controller.overrides_enforced s_incr);
    Alcotest.(check (float 0.0))
      (ctx ^ ": total_bps")
      (Ef.Controller.total_bps s_cold)
      (Ef.Controller.total_bps s_incr);
    Alcotest.(check (float 0.0))
      (ctx ^ ": detoured_bps")
      (Ef.Controller.detoured_bps s_cold)
      (Ef.Controller.detoured_bps s_incr);
    Alcotest.(check (list (pair int (float 0.0))))
      (ctx ^ ": residual overloads")
      (iface_floats (Ef.Controller.residual_overloads s_cold))
      (iface_floats (Ef.Controller.residual_overloads s_incr));
    Alcotest.(check (list Helpers.prefix_t))
      (ctx ^ ": stale overrides")
      (Ef.Projection.stale_overrides (Ef.Controller.enforced s_cold))
      (Ef.Projection.stale_overrides (Ef.Controller.enforced s_incr));
    let ifaces = C.Snapshot.ifaces !snap in
    Alcotest.(check (list (pair int (float 0.0))))
      (ctx ^ ": enforced loads")
      (loads_of (Ef.Controller.enforced s_cold) ifaces)
      (loads_of (Ef.Controller.enforced s_incr) ifaces)
  done;
  Alcotest.(check int)
    (Printf.sprintf "seed %d (%s): warm path engaged every patched cycle"
       seed cfg_name)
    (cycles - 1)
    (Ef.Controller.incremental_hits incr);
  Alcotest.(check int)
    (Printf.sprintf "seed %d (%s): cold reference never warm" seed cfg_name)
    0
    (Ef.Controller.incremental_hits cold);
  if flap then begin
    (* the plan must actually have exercised removal and re-addition —
       otherwise the case silently degrades to the capacity-only pin *)
    Alcotest.(check bool)
      (Printf.sprintf "seed %d (%s): flap removed the interface" seed cfg_name)
      true (!down_cycles > 0);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d (%s): flap re-added the interface" seed cfg_name)
      true (!up_after_down > 0)
  end;
  Alcotest.(check string)
    (Printf.sprintf "seed %d (%s): trace bytes" seed cfg_name)
    (trace_bytes tr_cold) (trace_bytes tr_incr)

let test_lockstep_seeded_worlds () =
  for seed = 0 to 99 do
    run_lockstep ~seed ~cycles:5 ()
  done

(* a longer single sequence so hysteresis ages, guard budgets and
   override retirement all cross cycle boundaries on the warm path *)
let test_lockstep_long_sequence () = run_lockstep ~seed:7 ~cycles:16 ()

(* interface-set churn on the warm path: a link flaps down and back up
   across a 16-cycle sequence, so the delta chain carries removals and
   re-additions — the incremental side must keep engaging every patched
   cycle (never fall back to cold) and still match the cold reference
   down to trace bytes. A handful of seeds rotates the flapped interface
   and the allocator config axes. *)
let test_lockstep_flap_sequence () =
  List.iter
    (fun seed -> run_lockstep ~flap:true ~seed ~cycles:16 ())
    [ 0; 1; 2; 3; 7 ]

(* the sharded controller against the serial cold reference: every
   observable must still match byte for byte when projection and
   working-set construction fan out across 2 and 4 domains *)
let test_lockstep_sharded () =
  List.iter
    (fun (seed, shards) -> run_lockstep ~shards ~seed ~cycles:6 ())
    [ (3, 2); (11, 4); (42, 4) ]

let suite =
  [
    Alcotest.test_case "incremental = cold on 100 seeded churn sequences"
      `Quick test_lockstep_seeded_worlds;
    Alcotest.test_case "incremental = cold on a long sequence" `Quick
      test_lockstep_long_sequence;
    Alcotest.test_case "incremental = cold across link flaps" `Quick
      test_lockstep_flap_sequence;
    Alcotest.test_case "sharded incremental = serial cold" `Quick
      test_lockstep_sharded;
  ]
