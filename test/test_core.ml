(* edge_fabric core: Config, Projection, Override, Allocator *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
open Helpers

(* A hand-built PoP: one private peer (10G), one public port (10G, with a
   public peer), one transit (100G). Three prefixes with chosen rates let
   each test force exactly the overload it wants.

   pfx_a (10.1.0.0/16): private best, public 2nd, transit 3rd
   pfx_b (10.2.0.0/16): private best, transit 2nd
   pfx_c (10.3.0.0/16): transit only                                       *)
let pfx_a = prefix "10.1.0.0/16"
let pfx_b = prefix "10.2.0.0/16"
let pfx_c = prefix "10.3.0.0/16"

type fixture = {
  pop : N.Pop.t;
  iface_private : N.Iface.t;
  iface_public : N.Iface.t;
  iface_transit : N.Iface.t;
}

let fixture () =
  let pop =
    N.Pop.create ~name:"fix" ~region:N.Region.Na_east ~asn:(Bgp.Asn.of_int 64500) ()
  in
  let policy = Ef_policy.standard_import_map ~self_asn:(Bgp.Asn.of_int 64500) in
  let iface_private =
    N.Pop.add_interface pop ~name:"pni" ~capacity_bps:10e9 ~shared:false
  in
  let iface_public =
    N.Pop.add_interface pop ~name:"ixp" ~capacity_bps:10e9 ~shared:true
  in
  let iface_transit =
    N.Pop.add_interface pop ~name:"transit" ~capacity_bps:100e9 ~shared:false
  in
  let private_peer = peer ~kind:Bgp.Peer.Private_peer ~asn:100 0 in
  let public_peer = peer ~kind:Bgp.Peer.Public_peer ~asn:200 1 in
  let transit_peer = peer ~kind:Bgp.Peer.Transit ~asn:10 2 in
  N.Pop.add_peer pop private_peer ~iface:iface_private ~policy;
  N.Pop.add_peer pop public_peer ~iface:iface_public ~policy;
  N.Pop.add_peer pop transit_peer ~iface:iface_transit ~policy;
  let announce peer_id path p =
    ignore
      (N.Pop.announce pop ~peer_id p
         (attrs ~path ~next_hop:(Printf.sprintf "172.16.0.%d" peer_id) ()))
  in
  announce 0 [ 100 ] pfx_a;
  announce 1 [ 200; 100 ] pfx_a;
  announce 2 [ 10; 100 ] pfx_a;
  announce 0 [ 100; 300 ] pfx_b;
  announce 2 [ 10; 300 ] pfx_b;
  announce 2 [ 10; 400 ] pfx_c;
  { pop; iface_private; iface_public; iface_transit }

let snapshot fx rates = C.Snapshot.of_pop fx.pop ~prefix_rates:rates ~time_s:0

(* --- Config ----------------------------------------------------------- *)

let test_config_default_valid () =
  match Ef.Config.validate Ef.Config.default with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_config_rejects_bad () =
  let bad cfg = Ef.Config.validate cfg = Ok () in
  Alcotest.(check bool) "threshold 0" false
    (bad (Ef.Config.make ~overload_threshold:0.0 ()));
  Alcotest.(check bool) "margin >= threshold" false
    (bad (Ef.Config.make ~release_margin:0.95 ()));
  Alcotest.(check bool) "low local pref" false
    (bad (Ef.Config.make ~override_local_pref:300 ()));
  Alcotest.(check bool) "negative budget" false
    (bad (Ef.Config.make ~max_overrides_per_cycle:(-1) ()))

(* --- Projection -------------------------------------------------------- *)

let test_projection_preferred_placement () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 4e9); (pfx_b, 3e9); (pfx_c, 2e9) ] in
  let proj = Ef.Projection.project snap in
  Helpers.check_float "private carries a+b" 7e9
    (Ef.Projection.load_bps proj ~iface_id:(N.Iface.id fx.iface_private));
  Helpers.check_float "transit carries c" 2e9
    (Ef.Projection.load_bps proj ~iface_id:(N.Iface.id fx.iface_transit));
  Helpers.check_float "public idle" 0.0
    (Ef.Projection.load_bps proj ~iface_id:(N.Iface.id fx.iface_public));
  Helpers.check_float "total" 9e9 (Ef.Projection.total_bps proj);
  Helpers.check_float "nothing overridden" 0.0 (Ef.Projection.overridden_bps proj)

let test_projection_override_honoured () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 4e9) ] in
  let transit_route =
    List.find
      (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Transit)
      (C.Snapshot.routes snap pfx_a)
  in
  let proj =
    Ef.Projection.project
      ~overrides:(fun p -> if Bgp.Prefix.equal p pfx_a then Some transit_route else None)
      snap
  in
  Helpers.check_float "moved to transit" 4e9
    (Ef.Projection.load_bps proj ~iface_id:(N.Iface.id fx.iface_transit));
  Helpers.check_float "overridden accounted" 4e9 (Ef.Projection.overridden_bps proj)

let test_projection_stale_override_falls_back () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_c, 2e9) ] in
  (* an override pointing at a peer that offers no route for pfx_c *)
  let ghost = route ~prefix_str:"10.3.0.0/16" ~peer_id:0 ~kind:Bgp.Peer.Private_peer () in
  let proj =
    Ef.Projection.project
      ~overrides:(fun p -> if Bgp.Prefix.equal p pfx_c then Some ghost else None)
      snap
  in
  Helpers.check_float "fell back to transit" 2e9
    (Ef.Projection.load_bps proj ~iface_id:(N.Iface.id fx.iface_transit));
  Alcotest.(check (list prefix_t)) "reported stale" [ pfx_c ]
    (Ef.Projection.stale_overrides proj)

let test_projection_overloaded_sorted () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 6e9); (pfx_b, 6e9); (pfx_c, 2e9) ] in
  let proj = Ef.Projection.project snap in
  match Ef.Projection.overloaded proj ~threshold:0.95 with
  | [ (iface, util) ] ->
      Alcotest.(check int) "private overloaded" (N.Iface.id fx.iface_private)
        (N.Iface.id iface);
      Helpers.check_float_eps 1e-9 "util" 1.2 util
  | l -> Alcotest.failf "expected one overload, got %d" (List.length l)

let test_projection_move () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_b, 3e9) ] in
  let proj = Ef.Projection.project snap in
  let transit_route =
    List.find
      (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Transit)
      (C.Snapshot.routes snap pfx_b)
  in
  let moved =
    Ef.Projection.move proj pfx_b ~to_route:transit_route
      ~to_iface:(N.Iface.id fx.iface_transit)
  in
  (* purity: the original projection is unchanged *)
  Helpers.check_float "original intact" 3e9
    (Ef.Projection.load_bps proj ~iface_id:(N.Iface.id fx.iface_private));
  Helpers.check_float "moved off" 0.0
    (Ef.Projection.load_bps moved ~iface_id:(N.Iface.id fx.iface_private));
  Helpers.check_float "moved on" 3e9
    (Ef.Projection.load_bps moved ~iface_id:(N.Iface.id fx.iface_transit));
  match Ef.Projection.placement_of moved pfx_b with
  | Some pl -> Alcotest.(check bool) "flagged overridden" true pl.Ef.Projection.overridden
  | None -> Alcotest.fail "placement lost"

let test_projection_unroutable_counted () =
  let fx = fixture () in
  let unknown = prefix "99.0.0.0/8" in
  let snap = snapshot fx [ (unknown, 7e9); (pfx_c, 1e9) ] in
  let proj = Ef.Projection.project snap in
  Helpers.check_float "unroutable" 7e9 (Ef.Projection.unroutable_bps proj);
  Helpers.check_float "total includes it" 8e9 (Ef.Projection.total_bps proj)

(* --- Override ----------------------------------------------------------- *)

let test_override_announcement_shape () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 1e9) ] in
  let transit_route =
    List.find
      (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Transit)
      (C.Snapshot.routes snap pfx_a)
  in
  let o =
    Ef.Override.make ~prefix:pfx_a ~target:transit_route ~from_iface:0 ~to_iface:2
      ~preference_level:2 ~rate_bps:1e9
  in
  let update = Ef.Override.to_announcement o ~local_pref:1000 in
  Alcotest.(check (list prefix_t)) "nlri" [ pfx_a ] update.Bgp.Msg.nlri;
  (match update.Bgp.Msg.attrs with
  | None -> Alcotest.fail "no attrs"
  | Some a ->
      Alcotest.(check (option int)) "local pref" (Some 1000) a.Bgp.Attrs.local_pref;
      Alcotest.(check bool) "marker community" true
        (Bgp.Attrs.has_community Ef.Override.override_community a);
      Alcotest.check ipv4_t "next hop is target's" (Bgp.Route.next_hop transit_route)
        a.Bgp.Attrs.next_hop);
  let w = Ef.Override.to_withdrawal o in
  Alcotest.(check (list prefix_t)) "withdrawal" [ pfx_a ] w.Bgp.Msg.withdrawn

let test_override_injection_wins_decision () =
  (* the whole enforcement story: inject the override announcement into
     the PoP RIB via a controller session and check the best path flips *)
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 1e9) ] in
  let transit_route =
    List.find
      (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Transit)
      (C.Snapshot.routes snap pfx_a)
  in
  let o =
    Ef.Override.make ~prefix:pfx_a ~target:transit_route
      ~from_iface:(N.Iface.id fx.iface_private)
      ~to_iface:(N.Iface.id fx.iface_transit) ~preference_level:2 ~rate_bps:1e9
  in
  (* the controller appears as one more peer session on the router *)
  let controller_peer =
    Bgp.Peer.make ~id:99 ~name:"edge-fabric" ~asn:(Bgp.Asn.of_int 64500)
      ~kind:Bgp.Peer.Private_peer ~router_id:(ip "10.255.0.1")
      ~session_addr:(ip "172.31.0.1")
  in
  Bgp.Rib.add_peer (N.Pop.rib fx.pop) controller_peer ~policy:Bgp.Policy.accept_all;
  let update = Ef.Override.to_announcement o ~local_pref:1000 in
  ignore (Bgp.Rib.apply_update (N.Pop.rib fx.pop) ~peer_id:99 update);
  (match Bgp.Rib.best (N.Pop.rib fx.pop) pfx_a with
  | None -> Alcotest.fail "no best"
  | Some r ->
      Alcotest.(check int) "override wins" 99 (Bgp.Route.peer_id r);
      Alcotest.(check bool) "marked" true (Ef.Override.is_override_route r));
  (* withdrawal restores the original best *)
  ignore
    (Bgp.Rib.apply_update (N.Pop.rib fx.pop) ~peer_id:99 (Ef.Override.to_withdrawal o));
  match Bgp.Rib.best (N.Pop.rib fx.pop) pfx_a with
  | Some r -> Alcotest.(check int) "private again" 0 (Bgp.Route.peer_id r)
  | None -> Alcotest.fail "no best after withdrawal"

let test_override_lookup () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 1e9) ] in
  let transit_route =
    List.find
      (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Transit)
      (C.Snapshot.routes snap pfx_a)
  in
  let o =
    Ef.Override.make ~prefix:pfx_a ~target:transit_route ~from_iface:0 ~to_iface:2
      ~preference_level:1 ~rate_bps:1.0
  in
  let lookup = Ef.Override.lookup [ o ] in
  Alcotest.(check bool) "finds" true (Option.is_some (lookup pfx_a));
  Alcotest.(check bool) "misses" true (Option.is_none (lookup pfx_b));
  Alcotest.(check (option int)) "level" (Some 1) (Ef.Override.level_of [ o ] pfx_a)

(* --- Allocator ----------------------------------------------------------- *)

let config = Ef.Config.default

let test_allocator_no_overload_no_overrides () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 1e9); (pfx_b, 1e9); (pfx_c, 1e9) ] in
  let result = Ef.Allocator.run ~config snap in
  Alcotest.(check int) "no overrides" 0 (List.length result.Ef.Allocator.overrides);
  Alcotest.(check int) "no residual" 0 (List.length result.Ef.Allocator.residual)

let test_allocator_relieves_overload () =
  let fx = fixture () in
  (* private iface (10G) gets 12G preferred: must shed >= 2.5G to reach 95% *)
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9); (pfx_c, 1e9) ] in
  let result = Ef.Allocator.run ~config snap in
  Alcotest.(check bool) "made overrides" true (result.Ef.Allocator.overrides <> []);
  Alcotest.(check int) "no residual" 0 (List.length result.Ef.Allocator.residual);
  let util =
    Ef.Projection.utilization result.Ef.Allocator.final fx.iface_private
  in
  Alcotest.(check bool) "private below threshold" true (util <= 0.95 +. 1e-9);
  match Ef.Allocator.check_invariants ~config result with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_allocator_largest_first_moves_one () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9) ] in
  let result = Ef.Allocator.run ~config snap in
  (* moving pfx_a (8G) alone suffices: largest-first needs one override *)
  Alcotest.(check int) "one override" 1 (List.length result.Ef.Allocator.overrides);
  let o = List.hd result.Ef.Allocator.overrides in
  Alcotest.check prefix_t "moved the big one" pfx_a o.Ef.Override.prefix

let test_allocator_smallest_first_moves_more () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9) ] in
  let config = { config with Ef.Config.order = Ef.Config.Smallest_first } in
  let result = Ef.Allocator.run ~config snap in
  Alcotest.(check bool) "first override is the small prefix" true
    (match result.Ef.Allocator.overrides with
    | o :: _ -> Bgp.Prefix.equal o.Ef.Override.prefix pfx_b
    | [] -> false)

let test_allocator_prefers_higher_ranked_target () =
  let fx = fixture () in
  (* pfx_a's 2nd choice is the public peer; with room there, the detour
     must go to public (level 1), not transit (level 2) *)
  let snap = snapshot fx [ (pfx_a, 6.5e9); (pfx_b, 5.6e9) ] in
  let result = Ef.Allocator.run ~config snap in
  match result.Ef.Allocator.overrides with
  | [ o ] ->
      Alcotest.check prefix_t "largest moved" pfx_a o.Ef.Override.prefix;
      Alcotest.(check int) "level 1" 1 o.Ef.Override.preference_level;
      Alcotest.(check int) "to public port" (N.Iface.id fx.iface_public)
        o.Ef.Override.to_iface
  | l -> Alcotest.failf "expected one override, got %d" (List.length l)

let test_allocator_skips_full_alternate () =
  let fx = fixture () in
  (* public port nearly full from its own traffic: pfx_a must skip it
     and go to transit (level 2) *)
  let rib = N.Pop.rib fx.pop in
  let extra = prefix "10.9.0.0/16" in
  ignore
    (Bgp.Rib.announce rib ~peer_id:1 extra (attrs ~path:[ 200; 900 ] ~next_hop:"172.16.0.1" ()));
  let snap = snapshot fx [ (pfx_a, 11e9); (extra, 9e9) ] in
  let result = Ef.Allocator.run ~config snap in
  let a_override =
    List.find
      (fun o -> Bgp.Prefix.equal o.Ef.Override.prefix pfx_a)
      result.Ef.Allocator.overrides
  in
  Alcotest.(check int) "to transit" (N.Iface.id fx.iface_transit)
    a_override.Ef.Override.to_iface;
  Alcotest.(check int) "level 2" 2 a_override.Ef.Override.preference_level

let test_allocator_residual_when_no_room () =
  let fx = fixture () in
  (* pfx_c has only the transit route: overload transit and nothing can move *)
  let snap = snapshot fx [ (pfx_c, 99e9) ] in
  let result = Ef.Allocator.run ~config snap in
  Alcotest.(check int) "no overrides possible" 0
    (List.length result.Ef.Allocator.overrides);
  Alcotest.(check int) "one residual" 1 (List.length result.Ef.Allocator.residual)

let test_allocator_budget_respected () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9) ] in
  let config = { config with Ef.Config.max_overrides_per_cycle = Some 0 } in
  let result = Ef.Allocator.run ~config snap in
  Alcotest.(check int) "no overrides" 0 (List.length result.Ef.Allocator.overrides);
  Alcotest.(check bool) "overload remains" true (result.Ef.Allocator.residual <> [])

let test_allocator_single_pass_can_overshoot () =
  let fx = fixture () in
  (* three 7G prefixes prefer private (21G on 10G); each one's best
     alternate is the 10G public port. Relief needs two moves; iterative
     re-projection sends the second to transit, while single-pass decides
     both against the stale (empty) public load and overloads it *)
  let rib = N.Pop.rib fx.pop in
  let pfx_d = prefix "10.4.0.0/16" in
  ignore
    (Bgp.Rib.announce rib ~peer_id:1 pfx_b
       (attrs ~path:[ 200; 300 ] ~next_hop:"172.16.0.1" ()));
  ignore
    (Bgp.Rib.announce rib ~peer_id:0 pfx_d
       (attrs ~path:[ 100; 500 ] ~next_hop:"172.16.0.0" ()));
  ignore
    (Bgp.Rib.announce rib ~peer_id:1 pfx_d
       (attrs ~path:[ 200; 500 ] ~next_hop:"172.16.0.1" ()));
  ignore
    (Bgp.Rib.announce rib ~peer_id:2 pfx_d
       (attrs ~path:[ 10; 500 ] ~next_hop:"172.16.0.2" ()));
  let rates = [ (pfx_a, 7e9); (pfx_b, 7e9); (pfx_d, 7e9) ] in
  let snap = snapshot fx rates in
  let iterative = Ef.Allocator.run ~config snap in
  let single =
    Ef.Allocator.run ~config:{ config with Ef.Config.iterative = false } snap
  in
  let public_util result =
    Ef.Projection.utilization result.Ef.Allocator.final fx.iface_public
  in
  Alcotest.(check bool) "iterative keeps public sane" true
    (public_util iterative <= 0.95 +. 1e-9);
  Alcotest.(check bool) "single-pass overshoots" true (public_util single > 1.0)

let test_allocator_split24 () =
  let fx = fixture () in
  (* pfx_a at 11G fits nowhere whole if both alternates are small; shrink
     the world: public gets 9G of its own, transit capacity reduced via a
     huge background prefix *)
  let rib = N.Pop.rib fx.pop in
  let bg = prefix "10.8.0.0/16" in
  ignore
    (Bgp.Rib.announce rib ~peer_id:2 bg (attrs ~path:[ 10; 800 ] ~next_hop:"172.16.0.2" ()));
  let snap = snapshot fx [ (pfx_a, 11e9); (bg, 91e9) ] in
  (* whole-prefix: pfx_a (11G) cannot fit on public (10G) nor transit
     (runs at 91/100); residual overload remains *)
  let whole = Ef.Allocator.run ~config snap in
  Alcotest.(check bool) "whole prefix stuck" true (whole.Ef.Allocator.residual <> []);
  (* split-24: /16 -> not splittable to /24 in one step? it is: 256 subnets
     exceed the expansion guard? 2^8 = 256 <= 2^20: fine *)
  let split =
    Ef.Allocator.run ~config:{ config with Ef.Config.granularity = Ef.Config.Split_24 } snap
  in
  Alcotest.(check bool) "split helps" true
    (List.length split.Ef.Allocator.residual < 1
    || Ef.Projection.utilization split.Ef.Allocator.final fx.iface_private
       < Ef.Projection.utilization whole.Ef.Allocator.final fx.iface_private);
  Alcotest.(check bool) "splits recorded" true (split.Ef.Allocator.splits > 0)

let test_allocator_override_targets_are_candidates () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 8e9); (pfx_b, 4e9); (pfx_c, 1e9) ] in
  let result = Ef.Allocator.run ~config snap in
  List.iter
    (fun o ->
      let parent_candidates =
        (* /24 children inherit the parent's candidates *)
        match C.Snapshot.routes snap o.Ef.Override.prefix with
        | [] ->
            let covering =
              List.find
                (fun p -> Bgp.Prefix.subsumes p o.Ef.Override.prefix)
                [ pfx_a; pfx_b; pfx_c ]
            in
            C.Snapshot.routes snap covering
        | routes -> routes
      in
      Alcotest.(check bool) "target is a candidate" true
        (List.exists
           (fun r -> Bgp.Route.peer_id r = Ef.Override.target_peer_id o)
           parent_candidates))
    result.Ef.Allocator.overrides

(* --- Working projection (the allocator's mutable scratch view) -------- *)

let working_fixture () =
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 4e9); (pfx_b, 3e9); (pfx_c, 2e9) ] in
  (fx, snap, Ef.Projection.project snap)

let test_working_seal_roundtrip () =
  let fx, _, proj = working_fixture () in
  let w = Ef.Projection.Working.of_projection proj in
  let sealed = Ef.Projection.Working.seal w in
  List.iter
    (fun iface ->
      let id = N.Iface.id iface in
      Helpers.check_float
        (Printf.sprintf "load %d" id)
        (Ef.Projection.load_bps proj ~iface_id:id)
        (Ef.Projection.load_bps sealed ~iface_id:id))
    [ fx.iface_private; fx.iface_public; fx.iface_transit ];
  Helpers.check_float "total" (Ef.Projection.total_bps proj)
    (Ef.Projection.total_bps sealed);
  Alcotest.(check int)
    "placement count"
    (List.length (Ef.Projection.placements proj))
    (List.length (Ef.Projection.placements sealed))

let test_working_move_matches_pure () =
  let fx, snap, proj = working_fixture () in
  let transit_route =
    List.find
      (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Transit)
      (C.Snapshot.routes snap pfx_a)
  in
  let to_iface = N.Iface.id fx.iface_transit in
  let pure = Ef.Projection.move proj pfx_a ~to_route:transit_route ~to_iface in
  let w = Ef.Projection.Working.of_projection proj in
  Ef.Projection.Working.move w pfx_a ~to_route:transit_route ~to_iface;
  let sealed = Ef.Projection.Working.seal w in
  List.iter
    (fun iface ->
      let id = N.Iface.id iface in
      Helpers.check_float
        (Printf.sprintf "load %d" id)
        (Ef.Projection.load_bps pure ~iface_id:id)
        (Ef.Projection.load_bps sealed ~iface_id:id))
    [ fx.iface_private; fx.iface_public; fx.iface_transit ];
  (* the index moved the placement between interface buckets *)
  Alcotest.(check bool) "gone from private" true
    (List.for_all
       (fun pl -> not (Bgp.Prefix.equal pl.Ef.Projection.placed_prefix pfx_a))
       (Ef.Projection.Working.placements_on w
          ~iface_id:(N.Iface.id fx.iface_private)));
  (match
     List.find_opt
       (fun pl -> Bgp.Prefix.equal pl.Ef.Projection.placed_prefix pfx_a)
       (Ef.Projection.Working.placements_on w ~iface_id:to_iface)
   with
  | None -> Alcotest.fail "pfx_a not on transit bucket"
  | Some pl ->
      Alcotest.(check bool) "marked overridden" true pl.Ef.Projection.overridden);
  (* source projection untouched *)
  Helpers.check_float "source unchanged" 7e9
    (Ef.Projection.load_bps proj ~iface_id:(N.Iface.id fx.iface_private))

let test_working_add_remove () =
  let fx, snap, proj = working_fixture () in
  let w = Ef.Projection.Working.of_projection proj in
  let id = N.Iface.id fx.iface_private in
  let route =
    match C.Snapshot.preferred_route snap pfx_a with
    | Some r -> r
    | None -> Alcotest.fail "no route"
  in
  let child = prefix "10.9.0.0/24" in
  Ef.Projection.Working.add_placement w ~prefix:child ~rate_bps:1e9 ~route
    ~iface_id:id ~overridden:false;
  Helpers.check_float "load grew" 8e9
    (Ef.Projection.Working.load_bps w ~iface_id:id);
  Alcotest.(check int) "bucket grew" 3
    (List.length (Ef.Projection.Working.placements_on w ~iface_id:id));
  Ef.Projection.Working.remove_placement w child;
  Helpers.check_float "load back" 7e9
    (Ef.Projection.Working.load_bps w ~iface_id:id);
  Alcotest.(check int) "bucket back" 2
    (List.length (Ef.Projection.Working.placements_on w ~iface_id:id));
  (* removing an absent prefix is a no-op *)
  Ef.Projection.Working.remove_placement w child;
  Helpers.check_float "still" 7e9 (Ef.Projection.Working.load_bps w ~iface_id:id)

let test_working_drain_touched () =
  let fx, snap, proj = working_fixture () in
  let w = Ef.Projection.Working.of_projection proj in
  Alcotest.(check (list int)) "clean at open" []
    (Ef.Projection.Working.drain_touched w);
  let transit_route =
    List.find
      (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Transit)
      (C.Snapshot.routes snap pfx_a)
  in
  let to_iface = N.Iface.id fx.iface_transit in
  Ef.Projection.Working.move w pfx_a ~to_route:transit_route ~to_iface;
  let touched = List.sort_uniq compare (Ef.Projection.Working.drain_touched w) in
  Alcotest.(check (list int))
    "both endpoints touched"
    (List.sort_uniq compare [ N.Iface.id fx.iface_private; to_iface ])
    touched;
  Alcotest.(check (list int)) "drained" [] (Ef.Projection.Working.drain_touched w)

let test_placement_order_total () =
  (* equal rates: the prefix tiebreak makes the order total and stable *)
  let fx = fixture () in
  let snap = snapshot fx [ (pfx_a, 3e9); (pfx_b, 3e9) ] in
  let proj = Ef.Projection.project snap in
  let id = N.Iface.id fx.iface_private in
  let order proj =
    List.map
      (fun pl -> Bgp.Prefix.to_string pl.Ef.Projection.placed_prefix)
      (Ef.Projection.placements_on proj ~iface_id:id)
  in
  Alcotest.(check (list string))
    "rate ties break by prefix"
    [ "10.1.0.0/16"; "10.2.0.0/16" ]
    (order proj);
  let w = Ef.Projection.Working.of_projection proj in
  Alcotest.(check (list string))
    "working index agrees"
    (order proj)
    (List.map
       (fun pl -> Bgp.Prefix.to_string pl.Ef.Projection.placed_prefix)
       (Ef.Projection.Working.placements_on w ~iface_id:id))

(* property: on random rate vectors over the generated tiny world, the
   allocator never pushes a previously-fine interface over threshold and
   always leaves relieved interfaces at or below it when it claims no
   residual *)
let qcheck_allocator_invariants =
  let world = N.Topo_gen.generate N.Topo_gen.small_config in
  let prefixes = Array.of_list world.N.Topo_gen.all_prefixes in
  QCheck.Test.make ~name:"allocator invariants on random demand" ~count:60
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 30) (int_bound 1000)))
    (fun (seed, rates) ->
      let rng = Ef_util.Rng.create seed in
      let prefix_rates =
        List.map
          (fun r ->
            let p = prefixes.(Ef_util.Rng.int rng (Array.length prefixes)) in
            (p, float_of_int (r + 1) *. 2e7))
          rates
      in
      (* dedup: last rate wins, as in a snapshot *)
      let tbl = Hashtbl.create 16 in
      List.iter (fun (p, r) -> Hashtbl.replace tbl (Bgp.Prefix.to_string p) (p, r)) prefix_rates;
      let prefix_rates = Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] in
      let snap =
        C.Snapshot.of_pop world.N.Topo_gen.pop ~prefix_rates ~time_s:0
      in
      let result = Ef.Allocator.run ~config snap in
      match Ef.Allocator.check_invariants ~config result with
      | Ok () -> true
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "config default valid" `Quick test_config_default_valid;
    Alcotest.test_case "config rejects bad" `Quick test_config_rejects_bad;
    Alcotest.test_case "projection preferred placement" `Quick
      test_projection_preferred_placement;
    Alcotest.test_case "projection override honoured" `Quick
      test_projection_override_honoured;
    Alcotest.test_case "projection stale override" `Quick
      test_projection_stale_override_falls_back;
    Alcotest.test_case "projection overloaded sorted" `Quick
      test_projection_overloaded_sorted;
    Alcotest.test_case "projection move" `Quick test_projection_move;
    Alcotest.test_case "projection unroutable" `Quick
      test_projection_unroutable_counted;
    Alcotest.test_case "override announcement shape" `Quick
      test_override_announcement_shape;
    Alcotest.test_case "override wins decision" `Quick
      test_override_injection_wins_decision;
    Alcotest.test_case "override lookup" `Quick test_override_lookup;
    Alcotest.test_case "allocator idle" `Quick test_allocator_no_overload_no_overrides;
    Alcotest.test_case "allocator relieves overload" `Quick
      test_allocator_relieves_overload;
    Alcotest.test_case "allocator largest first" `Quick
      test_allocator_largest_first_moves_one;
    Alcotest.test_case "allocator smallest first" `Quick
      test_allocator_smallest_first_moves_more;
    Alcotest.test_case "allocator prefers ranked target" `Quick
      test_allocator_prefers_higher_ranked_target;
    Alcotest.test_case "allocator skips full alternate" `Quick
      test_allocator_skips_full_alternate;
    Alcotest.test_case "allocator residual" `Quick
      test_allocator_residual_when_no_room;
    Alcotest.test_case "allocator budget" `Quick test_allocator_budget_respected;
    Alcotest.test_case "allocator single-pass overshoot" `Quick
      test_allocator_single_pass_can_overshoot;
    Alcotest.test_case "allocator split-24" `Quick test_allocator_split24;
    Alcotest.test_case "allocator targets are candidates" `Quick
      test_allocator_override_targets_are_candidates;
    Alcotest.test_case "working seal roundtrip" `Quick test_working_seal_roundtrip;
    Alcotest.test_case "working move matches pure" `Quick
      test_working_move_matches_pure;
    Alcotest.test_case "working add/remove" `Quick test_working_add_remove;
    Alcotest.test_case "working drain touched" `Quick test_working_drain_touched;
    Alcotest.test_case "placement order is total" `Quick test_placement_order_total;
    QCheck_alcotest.to_alcotest qcheck_allocator_invariants;
  ]
