(* The benchmark harness.

   Two halves:
   - the experiment suite: regenerates every table/figure of the paper's
     evaluation (E1–E9 plus the ablations), printing paper-shaped rows;
   - the Bechamel microbenchmark suite (E10): controller-scale timings —
     allocator cycle time vs world size, plus the hot substrate paths
     (decision process, trie LPM, codec).

   `main.exe` runs both; `main.exe e4` (etc.) runs one experiment;
   `main.exe micro` runs only the timing suite; `main.exe all fast` uses
   coarser cycles for a quick pass. *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
module E = Ef_sim.Experiments

(* ------------------------------------------------------------------ *)
(* Bechamel microbenches (E10)                                         *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* worlds and snapshots prepared once, outside the timed region *)
let snapshot_of scenario = Gen.snapshot_of_scenario ~time_s:(20 * 3600) scenario

let tiny_snap = lazy (snapshot_of N.Scenario.tiny)
let pop_a_snap = lazy (snapshot_of N.Scenario.pop_a)
let stress_snap = lazy (snapshot_of N.Scenario.stress)

let allocator_bench snap_lazy =
  Staged.stage (fun () ->
      let snap = Lazy.force snap_lazy in
      ignore (Ef.Allocator.run ~config:Ef.Config.default snap))

let allocator_ref_bench snap_lazy =
  Staged.stage (fun () ->
      let snap = Lazy.force snap_lazy in
      ignore (Ef.Allocator_ref.run ~config:Ef.Config.default snap))

let projection_bench snap_lazy =
  Staged.stage (fun () ->
      let snap = Lazy.force snap_lazy in
      ignore (Ef.Projection.project snap))

let decision_routes =
  lazy
    (let snap = Lazy.force pop_a_snap in
     List.filter_map
       (fun (p, _) ->
         match C.Snapshot.routes snap p with
         | [] | [ _ ] -> None
         | routes -> Some routes)
       (C.Snapshot.prefix_rates snap))

let decision_bench =
  Staged.stage (fun () ->
      List.iter
        (fun routes -> ignore (Bgp.Decision.rank routes))
        (Lazy.force decision_routes))

let lpm_trie =
  lazy
    (let snap = Lazy.force pop_a_snap in
     List.fold_left
       (fun t (p, r) -> Bgp.Ptrie.add p r t)
       Bgp.Ptrie.empty
       (C.Snapshot.prefix_rates snap))

let lpm_bench =
  Staged.stage (fun () ->
      let trie = Lazy.force lpm_trie in
      for i = 0 to 999 do
        let addr = Bgp.Ipv4.of_int32 (Int32.of_int (0x40000000 + (i * 77777))) in
        ignore (Bgp.Ptrie.longest_match addr trie)
      done)

let update_msg =
  lazy
    (Bgp.Msg.make_update
       ~attrs:
         (Bgp.Attrs.make ~med:(Some 10) ~local_pref:(Some 400)
            ~communities:[ Bgp.Community.make 65000 911 ]
            ~as_path:(Bgp.As_path.of_list [ Bgp.Asn.of_int 64500; Bgp.Asn.of_int 7 ])
            ~next_hop:(Bgp.Ipv4.of_string "10.0.0.1") ())
       ~nlri:
         (List.init 50 (fun i ->
              Bgp.Prefix.make (Bgp.Ipv4.of_octets 10 (i land 0xFF) 0 0) 24))
       ())

let codec_bench =
  Staged.stage (fun () ->
      let msg = Lazy.force update_msg in
      let wire = Bgp.Codec.encode msg in
      match Bgp.Codec.decode wire with
      | Ok _ -> ()
      | Error _ -> assert false)

(* the engine polls the injector several times per interface per cycle,
   so its query cost rides the hot step path *)
let fault_injector =
  lazy
    (match Ef_netsim.Scenario.find_fault_plan "chaos" with
    | Some plan -> Ef_fault.Injector.create plan
    | None -> assert false)

let fault_query_bench =
  Staged.stage (fun () ->
      let inj = Lazy.force fault_injector in
      for time_s = 0 to 599 do
        ignore (Ef_fault.Injector.link_down inj ~iface_id:0 ~time_s);
        ignore (Ef_fault.Injector.capacity_factor inj ~iface_id:1 ~time_s);
        ignore (Ef_fault.Injector.bmp_stalled inj ~time_s)
      done)

let micro_tests =
  [
    Test.make ~name:"allocator/tiny(~40pfx)" (allocator_bench tiny_snap);
    Test.make ~name:"allocator/pop-a(~1.5kpfx)" (allocator_bench pop_a_snap);
    Test.make ~name:"allocator/stress(~5kpfx)" (allocator_bench stress_snap);
    Test.make ~name:"projection/pop-a" (projection_bench pop_a_snap);
    Test.make ~name:"projection/stress" (projection_bench stress_snap);
    Test.make ~name:"decision-rank/pop-a-all-prefixes" decision_bench;
    Test.make ~name:"ptrie-lpm/1k-lookups" lpm_bench;
    Test.make ~name:"codec/update-50-nlri-roundtrip" codec_bench;
    Test.make ~name:"fault/injector-600s-queries" fault_query_bench;
  ]

(* measure one Bechamel case; returns (name, ns/run) *)
let measure_case ~cfg ~instance ~ols case =
  let raw = Benchmark.run cfg [ instance ] case in
  let result = Analyze.one ols instance raw in
  let ns =
    match Analyze.OLS.estimates result with
    | Some [ est ] -> est
    | Some _ | None -> nan
  in
  (Test.Elt.name case, ns)

let print_timing (name, ns) =
  if ns >= 1e9 then Printf.printf "  %-40s %10.3f s/run\n%!" name (ns /. 1e9)
  else if ns >= 1e6 then Printf.printf "  %-40s %10.3f ms/run\n%!" name (ns /. 1e6)
  else if ns >= 1e3 then Printf.printf "  %-40s %10.3f us/run\n%!" name (ns /. 1e3)
  else Printf.printf "  %-40s %10.0f ns/run\n%!" name ns

let measure_suite ?(fast = false) tests =
  let quota = if fast then 0.25 else 0.5 in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:None () in
  let instance = Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      List.map
        (fun case ->
          let r = measure_case ~cfg ~instance ~ols case in
          print_timing r;
          r)
        (Test.elements test))
    tests

let run_micro ?fast () =
  print_endline "== E10: controller scale microbenchmarks (Bechamel) ==";
  let results = measure_suite ?fast micro_tests in
  print_newline ();
  results

(* E10d: one full allocator cycle, optimized implementation vs the frozen
   pre-PR reference (Ef.Allocator_ref), on the same prepared snapshots.
   The stress-scenario ratio is the PR's acceptance number. *)
let e10d_scenarios =
  [
    ("tiny", tiny_snap);
    ("pop-a", pop_a_snap);
    ("stress", stress_snap);
  ]

let run_e10d ?fast () =
  print_endline "== E10d: allocator cycle, optimized vs pre-PR reference ==";
  let rows =
    List.map
      (fun (label, snap) ->
        let results =
          measure_suite ?fast
            [
              Test.make ~name:("e10d/opt-" ^ label) (allocator_bench snap);
              Test.make ~name:("e10d/ref-" ^ label) (allocator_ref_bench snap);
            ]
        in
        let ns_of key =
          match List.assoc_opt (key ^ label) results with
          | Some ns -> ns
          | None -> nan
        in
        let opt_ns = ns_of "e10d/opt-" and ref_ns = ns_of "e10d/ref-" in
        let speedup = ref_ns /. opt_ns in
        Printf.printf "  %-40s %9.2fx speedup\n%!" ("e10d/" ^ label) speedup;
        (label, ref_ns, opt_ns, speedup))
      e10d_scenarios
  in
  print_newline ();
  rows

(* E11: fleet wall-clock vs --jobs. Each measurement builds a fresh
   fleet (engines are single-run) and times Fleet.run on the monotonic
   clock. Two fleet shapes: the four paper PoPs, and a generated 16-PoP
   fleet where domain parallelism has enough PoPs to bite. *)
let e11_jobs = [ 1; 2; 4 ]

let run_e11_fleet ?(fast = false) () =
  print_endline "== E11: fleet runner wall-clock vs domains (--jobs) ==";
  let hours = if fast then 2 else 6 in
  let config =
    Ef_sim.Engine.make_config ~cycle_s:300 ~duration_s:(hours * 3600) ~seed:11 ()
  in
  let fleets =
    [
      ("paper-4pop", N.Scenario.paper_pops);
      ("gen-16pop", N.Scenario.generated_fleet ~n:16 ());
    ]
  in
  let rows =
    List.concat_map
      (fun (label, scenarios) ->
        let time_run jobs =
          let fleet = Ef_sim.Fleet.create ~config scenarios in
          let t0 = Ef_obs.Clock.now_ns () in
          ignore (Ef_sim.Fleet.run ~jobs fleet);
          Ef_obs.Clock.elapsed_s t0
        in
        (* warm one sequential run so world generation costs are paid
           before any timed run, evenly for every jobs value *)
        ignore (time_run 1);
        let base = time_run 1 in
        List.map
          (fun jobs ->
            let s = if jobs = 1 then base else time_run jobs in
            let speedup = base /. s in
            Printf.printf "  %-12s jobs=%d  %8.2f s  %6.2fx\n%!" label jobs s
              speedup;
            (label, jobs, s, speedup))
          e11_jobs)
      fleets
  in
  print_newline ();
  rows

(* BENCH_PR5.json: the machine-readable perf trajectory record.

   The parallel-speedup acceptance only applies where it can physically
   show up: on a single-core box (this container, some CI shells) every
   jobs value serializes onto one core, so the gate is keyed on the
   domain count the runtime reports. *)
let write_bench_json path ~micro ~e10d ~e11 =
  let module J = Ef_obs.Json in
  let stress_speedup =
    match List.find_opt (fun (l, _, _, _) -> l = "stress") e10d with
    | Some (_, _, _, s) -> s
    | None -> nan
  in
  let cores = Domain.recommended_domain_count () in
  let gen16_speedup_j4 =
    match
      List.find_opt (fun (l, j, _, _) -> l = "gen-16pop" && j = 4) e11
    with
    | Some (_, _, _, s) -> s
    | None -> nan
  in
  let json =
    J.Obj
      [
        ("schema", J.String "edge-fabric-bench/1");
        ("pr", J.Int 5);
        ("source", J.String "bench/main.exe micro");
        ("cores", J.Int cores);
        ( "micro",
          J.List
            (List.map
               (fun (name, ns) ->
                 J.Obj [ ("name", J.String name); ("ns_per_run", J.Float ns) ])
               micro) );
        ( "e10d",
          J.List
            (List.map
               (fun (label, ref_ns, opt_ns, speedup) ->
                 J.Obj
                   [
                     ("scenario", J.String label);
                     ("ref_ns_per_run", J.Float ref_ns);
                     ("opt_ns_per_run", J.Float opt_ns);
                     ("speedup", J.Float speedup);
                   ])
               e10d) );
        ( "e11_fleet",
          J.List
            (List.map
               (fun (label, jobs, seconds, speedup) ->
                 J.Obj
                   [
                     ("fleet", J.String label);
                     ("jobs", J.Int jobs);
                     ("wall_s", J.Float seconds);
                     ("speedup_vs_jobs1", J.Float speedup);
                   ])
               e11) );
        ( "acceptance",
          J.Obj
            [
              ("stress_speedup", J.Float stress_speedup);
              ("stress_required_min", J.Float 5.0);
              ("gen16_jobs4_speedup", J.Float gen16_speedup_j4);
              ("gen16_jobs4_required_min", J.Float 2.0);
              ( "gen16_jobs4_applicable",
                (* < 4 cores: domains serialize, the 2x bar can't show *)
                J.Bool (cores >= 4) );
              ( "gen16_status",
                (* explicit verdict: "skipped" (too few cores to judge),
                   never a silent pass-when-inapplicable *)
                J.String
                  (if cores < 4 then "skipped"
                   else if gen16_speedup_j4 >= 2.0 then "pass"
                   else "fail") );
              ( "pass",
                J.Bool
                  (stress_speedup >= 5.0
                  && (cores < 4 || gen16_speedup_j4 >= 2.0)) );
            ] );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s (stress %.2fx, gen16 jobs=4 %.2fx on %d cores)\n%!"
    path stress_speedup gen16_speedup_j4 cores

(* ------------------------------------------------------------------ *)
(* E13: dfz end-to-end incremental cycles (BENCH_PR7.json)             *)
(* ------------------------------------------------------------------ *)

(* Full mode runs the million-prefix world; fast mode (the CI smoke)
   the 50k variant. Differential verification re-assembles every
   snapshot and replays the whole world through a cold pipeline, so it
   always runs at smoke scale — at 1M the reference side alone would
   take minutes per cycle. In fast mode the main run verifies inline;
   in full mode a separate smoke-scale run carries the identity bit. *)
let run_e13_dfz ~fast () =
  let module D = Ef_sim.Dfz_run in
  let scale, dfz_cfg, cycles =
    if fast then ("dfz-smoke", N.Scenario.dfz_smoke, 10)
    else ("dfz", N.Scenario.dfz, 30)
  in
  Printf.printf "== E13: dfz end-to-end cycles (%s) ==\n%!" scale;
  let report = D.run ~config:(D.config ~cycles ~verify:fast ()) dfz_cfg in
  Format.printf "%a@." D.pp_report report;
  let verify_report =
    if fast then report
    else begin
      Printf.printf "-- differential verification (dfz-smoke) --\n%!";
      let r =
        D.run ~config:(D.config ~cycles:10 ~verify:true ()) N.Scenario.dfz_smoke
      in
      Format.printf "%a@." D.pp_report r;
      r
    end
  in
  (scale, report, verify_report)

(* BENCH_PR7.json: the e13 acceptance record. The p99 bar is stated
   over steady-state churn, so cycle 0 — which assembles the table from
   nothing — is excluded from the acceptance percentile (both figures
   are reported). *)
let write_bench_pr7_json path ~dfz:(scale, report, verify_report) =
  let module D = Ef_sim.Dfz_run in
  let module J = Ef_obs.Json in
  let steady_p99 = D.steady_p99_s report in
  let identical =
    verify_report.D.verified_cycles > 0 && verify_report.D.mismatches = []
  in
  let hits_expected = report.D.cycles_run - 1 in
  let pass =
    steady_p99 < 1.0 && identical
    && report.D.incremental_hits = hits_expected
  in
  let json =
    J.Obj
      [
        ("schema", J.String "edge-fabric-bench/1");
        ("pr", J.Int 7);
        ("source", J.String "bench/main.exe e13");
        ("experiment", J.String "e13-dfz");
        ("scale", J.String scale);
        ("dfz", D.report_to_json report);
        ("verify", D.report_to_json verify_report);
        ( "acceptance",
          J.Obj
            [
              ("steady_p99_s", J.Float steady_p99);
              ("steady_p99_required_max_s", J.Float 1.0);
              ( "steady_note",
                J.String
                  "cycle 0 assembles the table cold; the steady-state churn \
                   bar applies from cycle 1" );
              ("full_scale", J.Bool (scale = "dfz"));
              ("incremental_identical", J.Bool identical);
              ("verified_cycles", J.Int verify_report.D.verified_cycles);
              ("incremental_hits", J.Int report.D.incremental_hits);
              ("incremental_hits_expected", J.Int hits_expected);
              ("pass", J.Bool pass);
            ] );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s (%s: steady p99 %.3fs, identical=%b, hits %d/%d)\n%!"
    path scale steady_p99 identical report.D.incremental_hits hits_expected

(* ------------------------------------------------------------------ *)
(* E16: flap cycles on the warm path vs forced-cold (BENCH_PR10.json)  *)
(* ------------------------------------------------------------------ *)

(* The dfz world under the canned dfz-flap plan: iface 1 flaps (whole
   interface disappears and returns), iface 2 is derated. Two runs over
   the identical world: one on the warm path, one with incremental off —
   the 11-second stall this PR removes is the second run's flap-cycle
   latency. 300 s cycles cover the plan's windows in 12 cycles.
   Verification always runs at smoke scale (as in e13). *)
let run_e16_flap ~fast () =
  let module D = Ef_sim.Dfz_run in
  let scale, dfz_cfg =
    if fast then ("dfz-smoke", N.Scenario.dfz_smoke) else ("dfz", N.Scenario.dfz)
  in
  let cycles = 12 and cycle_s = 300 in
  let faults =
    match N.Scenario.find_fault_plan "dfz-flap" with
    | Some p -> p
    | None -> failwith "canned plan dfz-flap missing"
  in
  (* the full-scale cold side re-projects the whole table every cycle;
     shard it like efctl --shards would so the comparison is against the
     cold path at its best, not a strawman *)
  let shards = if fast then 1 else Stdlib.min 8 (Domain.recommended_domain_count ()) in
  let controller = Ef.Config.with_shards shards Ef.Config.default in
  Printf.printf "== E16: dfz flap cycles, warm vs forced-cold (%s) ==\n%!" scale;
  let warm =
    D.run
      ~config:(D.config ~cycles ~cycle_s ~verify:fast ~faults ~controller ())
      dfz_cfg
  in
  Format.printf "warm:   %a@." D.pp_report warm;
  let cold =
    D.run
      ~config:
        (D.config ~cycles ~cycle_s ~faults
           ~controller:(Ef.Config.with_incremental false controller)
           ())
      dfz_cfg
  in
  Format.printf "cold:   %a@." D.pp_report cold;
  let flap = warm.D.iface_event_cycles in
  let times_at r cs = List.map (fun c -> r.D.cycle_seconds.(c)) cs in
  List.iter
    (fun c ->
      Printf.printf "  flap cycle %2d: warm %.3fs  forced-cold %.3fs\n%!" c
        warm.D.cycle_seconds.(c) cold.D.cycle_seconds.(c))
    flap;
  let verify_report =
    if fast then warm
    else begin
      Printf.printf "-- differential verification (dfz-smoke) --\n%!";
      let r =
        D.run
          ~config:(D.config ~cycles ~cycle_s ~verify:true ~faults ())
          N.Scenario.dfz_smoke
      in
      Format.printf "%a@." D.pp_report r;
      r
    end
  in
  (scale, warm, cold, verify_report, times_at)

let write_bench_pr10_json path
    ~e16:(scale, warm, cold, verify_report, times_at) =
  let module D = Ef_sim.Dfz_run in
  let module J = Ef_obs.Json in
  let p99 times =
    match times with
    | [] -> 0.0
    | _ ->
        let a = Array.of_list times in
        Array.sort Float.compare a;
        let n = Array.length a in
        a.(max 0 (min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1)))
  in
  let mean = function
    | [] -> 0.0
    | ts -> List.fold_left ( +. ) 0.0 ts /. float_of_int (List.length ts)
  in
  let flap = warm.D.iface_event_cycles in
  let warm_flap = times_at warm flap and cold_flap = times_at cold flap in
  let flap_p99 = p99 warm_flap in
  let speedup =
    if mean warm_flap > 0.0 then mean cold_flap /. mean warm_flap else 0.0
  in
  let identical =
    verify_report.D.verified_cycles > 0 && verify_report.D.mismatches = []
  in
  let hits_expected = warm.D.cycles_run - 1 in
  let pass =
    identical && flap <> []
    && warm.D.incremental_hits = hits_expected
    && flap_p99 < 1.0
  in
  let json =
    J.Obj
      [
        ("schema", J.String "edge-fabric-bench/1");
        ("pr", J.Int 10);
        ("source", J.String "bench/main.exe e16");
        ("experiment", J.String "e16-iface-churn");
        ("scale", J.String scale);
        ("warm", D.report_to_json warm);
        ("forced_cold", D.report_to_json cold);
        ("verify", D.report_to_json verify_report);
        ( "acceptance",
          J.Obj
            [
              ("flap_cycles", J.Int (List.length flap));
              ("flap_p99_s", J.Float flap_p99);
              ("flap_p99_required_max_s", J.Float 1.0);
              ("forced_cold_flap_p99_s", J.Float (p99 cold_flap));
              ("flap_speedup_vs_cold", J.Float speedup);
              ("incremental_identical", J.Bool identical);
              ("verified_cycles", J.Int verify_report.D.verified_cycles);
              ("incremental_hits", J.Int warm.D.incremental_hits);
              ("incremental_hits_expected", J.Int hits_expected);
              ( "note",
                J.String
                  "flap percentiles are over the cycles whose snapshot delta \
                   carried interface-set changes; the warm run must never \
                   fall back to cold on them" );
              ("pass", J.Bool pass);
            ] );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string json);
      output_char oc '\n');
  Printf.printf
    "wrote %s (%s: flap p99 %.3fs vs cold %.3fs, %.1fx, identical=%b, hits \
     %d/%d)\n\
     %!"
    path scale flap_p99 (p99 cold_flap) speedup identical
    warm.D.incremental_hits hits_expected

(* `json-check FILE`: exit 0 iff FILE parses as JSON and carries the
   bench schema — the CI gate against a malformed report *)
let json_check path =
  let module J = Ef_obs.Json in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match J.parse contents with
  | Error e ->
      Printf.eprintf "%s: malformed JSON: %s\n" path e;
      exit 1
  | Ok json -> (
      match Option.bind (J.member "schema" json) J.to_string_opt with
      | Some "edge-fabric-bench/1" -> Printf.printf "%s: ok\n%!" path
      | Some other ->
          Printf.eprintf "%s: unexpected schema %S\n" path other;
          exit 1
      | None ->
          Printf.eprintf "%s: missing \"schema\" field\n" path;
          exit 1)

(* per-stage attribution of the controller cycle, from the Ef_obs spans:
   where inside a cycle the time actually goes on the pop-a world *)
let run_stage_attribution () =
  let cycles = 50 in
  print_endline "== E10b: controller cycle stage attribution (Ef_obs spans) ==";
  let reg = Ef_obs.Registry.create () in
  let ctrl = Ef.Controller.create ~obs:reg ~name:"bench" () in
  let snap = Lazy.force pop_a_snap in
  for _ = 1 to cycles do
    ignore (Ef.Controller.cycle ctrl snap)
  done;
  let total =
    match Ef_obs.Registry.find reg "controller.cycle" with
    | Some (Ef_obs.Registry.Span_m h) -> Ef_obs.Histogram.sum h
    | _ -> 0.0
  in
  Printf.printf "  %d cycles on pop-a, %.3f ms/cycle total\n" cycles
    (1e3 *. total /. float_of_int cycles);
  List.iter
    (fun name ->
      match Ef_obs.Registry.find reg name with
      | Some (Ef_obs.Registry.Span_m h) ->
          let sum = Ef_obs.Histogram.sum h in
          Printf.printf "  %-26s %10.3f ms/cycle  p99 %8.3f ms  %5.1f%%\n" name
            (1e3 *. sum /. float_of_int cycles)
            (1e3 *. Ef_obs.Histogram.quantile h 0.99)
            (if total > 0.0 then 100.0 *. sum /. total else 0.0)
      | _ -> ())
    [
      "controller.allocate";
      "controller.guard.clamp";
      "controller.reconcile";
      "controller.project";
      "controller.guard.audit";
    ];
  print_newline ()

(* E10c: what decision tracing costs. Three controllers on the same
   snapshot: no recorder (the noop), recorder enabled, and enabled with a
   small ring (more truncation). The acceptance bar for the trace layer
   is noop within 2% of the pre-trace baseline — the noop run IS the
   shipped default path, so its delta vs itself is what CI watches. *)
let run_trace_overhead () =
  let cycles = 50 in
  print_endline "== E10c: decision-trace overhead (noop vs enabled) ==";
  let snap = Lazy.force pop_a_snap in
  let ms_per_cycle ~trace name =
    Gc.compact ();
    let reg = Ef_obs.Registry.create () in
    let ctrl = Ef.Controller.create ~obs:reg ~trace ~name () in
    for _ = 1 to cycles do
      ignore (Ef.Controller.cycle ctrl snap)
    done;
    match Ef_obs.Registry.find reg "controller.cycle" with
    | Some (Ef_obs.Registry.Span_m h) ->
        1e3 *. Ef_obs.Histogram.sum h /. float_of_int cycles
    | _ -> nan
  in
  let noop = ms_per_cycle ~trace:Ef_trace.Recorder.noop "bench-notrace" in
  let full =
    ms_per_cycle ~trace:(Ef_trace.Recorder.create ()) "bench-trace"
  in
  let small =
    ms_per_cycle ~trace:(Ef_trace.Recorder.create ~capacity:4 ()) "bench-ring4"
  in
  Printf.printf "  %-26s %10.3f ms/cycle\n" "trace disabled (noop)" noop;
  Printf.printf "  %-26s %10.3f ms/cycle  (%+.1f%% vs noop)\n" "trace enabled"
    full
    (if noop > 0.0 then 100.0 *. (full -. noop) /. noop else nan);
  Printf.printf "  %-26s %10.3f ms/cycle  (%+.1f%% vs noop)\n"
    "trace enabled, ring=4" small
    (if noop > 0.0 then 100.0 *. (small -. noop) /. noop else nan);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E14: health/profiling overhead (BENCH_PR8.json)                     *)
(* ------------------------------------------------------------------ *)

(* What continuous self-profiling costs. Two controllers on the stress
   snapshot: the shipped default (no profile hook, noop tracker) and the
   fully enabled health stack (profiler attached to the registry, so
   every span pays the hook dispatch, plus the tracker fed once per
   cycle). Wall time is measured around the cycle loop — not from the
   spans, which would exclude their own hook cost — and each config takes
   the minimum over [reps] fresh runs, so scheduler noise cannot fail the
   gate. The acceptance bar: enabled within 2% of noop. *)
let run_e14_health ?(fast = false) () =
  let cycles = 30 and reps = if fast then 3 else 5 in
  print_endline "== E14: health/profiling overhead (noop vs enabled) ==";
  let snap = Lazy.force stress_snap in
  let ms_per_cycle ~enabled name =
    let best = ref infinity in
    for _ = 1 to reps do
      Gc.compact ();
      let reg = Ef_obs.Registry.create () in
      let health =
        if enabled then begin
          let p = Ef_health.Profiler.create () in
          Ef_health.Profiler.attach p reg;
          Ef_health.Tracker.create ~profiler:p ~obs:reg ()
        end
        else Ef_health.Tracker.noop
      in
      let ctrl = Ef.Controller.create ~obs:reg ~name () in
      let t0 = Ef_obs.Clock.now_ns () in
      for cycle = 1 to cycles do
        let c0 = Ef_obs.Clock.now_ns () in
        let stats = Ef.Controller.cycle ctrl snap in
        if Ef_health.Tracker.enabled health then
          ignore
            (Ef_health.Tracker.observe_cycle health
               {
                 Ef_health.Tracker.time_s = 30 * cycle;
                 duration_s = Ef_obs.Clock.elapsed_s c0;
                 degraded = Ef.Controller.degraded stats <> None;
                 skipped = false;
                 stale = false;
                 violations = List.length (Ef.Controller.guard_violations stats);
                 residual = List.length (Ef.Controller.residual_overloads stats);
               })
      done;
      let ms = 1e3 *. Ef_obs.Clock.elapsed_s t0 /. float_of_int cycles in
      if ms < !best then best := ms
    done;
    !best
  in
  let noop = ms_per_cycle ~enabled:false "bench-health-noop" in
  let enabled = ms_per_cycle ~enabled:true "bench-health-on" in
  let overhead_pct =
    if noop > 0.0 then 100.0 *. (enabled -. noop) /. noop else nan
  in
  Printf.printf "  %-26s %10.3f ms/cycle\n" "health disabled (noop)" noop;
  Printf.printf "  %-26s %10.3f ms/cycle  (%+.2f%% vs noop)\n"
    "profiler + tracker" enabled overhead_pct;
  print_newline ();
  (noop, enabled, overhead_pct)

let write_bench_pr8_json path ~e14:(noop_ms, enabled_ms, overhead_pct) =
  let module J = Ef_obs.Json in
  let pass = overhead_pct <= 2.0 in
  let json =
    J.Obj
      [
        ("schema", J.String "edge-fabric-bench/1");
        ("pr", J.Int 8);
        ("source", J.String "bench/main.exe e14");
        ("experiment", J.String "e14-health-overhead");
        ("scenario", J.String "stress");
        ("cycles", J.Int 30);
        ("noop_ms_per_cycle", J.Float noop_ms);
        ("enabled_ms_per_cycle", J.Float enabled_ms);
        ( "acceptance",
          J.Obj
            [
              ("overhead_pct", J.Float overhead_pct);
              ("overhead_required_max_pct", J.Float 2.0);
              ( "note",
                J.String
                  "min-of-reps wall time per controller cycle on the stress \
                   snapshot; enabled = profiler hook on every span + GC \
                   counters + tracker fed per cycle" );
              ("pass", J.Bool pass);
            ] );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s (overhead %+.2f%%, pass=%b)\n%!" path overhead_pct
    pass

(* ------------------------------------------------------------------ *)
(* E15: intra-engine sharding + persistent pool (BENCH_PR9.json)       *)
(* ------------------------------------------------------------------ *)

let e15_points = [ 1; 2; 4 ]

(* Two curves, both over [e15_points] domains.

   Part A — the 16-PoP fleet on the persistent process-wide pool: the
   first parallel run spawns the worker domains and every later run
   reuses them, so the timed points measure the steady reuse path, not
   a spawn/join per run. Part B — the dfz cold start (full-table
   Snapshot.assemble + the first controller cycle) at increasing
   [--shards]; this is the ~11 s regime at 1M prefixes the sharded
   build attacks. Every point warms once at its own domain count (pool
   spawn + world caches) and then takes the min over [reps] runs, so
   scheduler noise cannot fail the gate. *)
let run_e15_multicore ?(fast = false) () =
  let module D = Ef_sim.Dfz_run in
  print_endline "== E15: intra-engine sharding + persistent pool ==";
  let reps = if fast then 1 else 2 in
  let min_of_reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let s = f () in
      if s < !best then best := s
    done;
    !best
  in
  (* Part A: fleet wall clock vs jobs on the persistent pool *)
  let hours = if fast then 2 else 6 in
  let config =
    Ef_sim.Engine.make_config ~cycle_s:300 ~duration_s:(hours * 3600) ~seed:15 ()
  in
  let scenarios = N.Scenario.generated_fleet ~n:16 () in
  let time_fleet jobs =
    let fleet = Ef_sim.Fleet.create ~config scenarios in
    let t0 = Ef_obs.Clock.now_ns () in
    ignore (Ef_sim.Fleet.run ~jobs fleet);
    Ef_obs.Clock.elapsed_s t0
  in
  let measure_fleet jobs =
    ignore (time_fleet jobs);
    (* warm: pool spawn for this jobs value + world costs *)
    min_of_reps (fun () -> time_fleet jobs)
  in
  let fleet_base = measure_fleet 1 in
  let fleet_rows =
    List.map
      (fun jobs ->
        let s = if jobs = 1 then fleet_base else measure_fleet jobs in
        let speedup = fleet_base /. s in
        Printf.printf "  gen-16pop    jobs=%d    %8.2f s  %6.2fx\n%!" jobs s
          speedup;
        (jobs, s, speedup))
      e15_points
  in
  (* Part B: dfz cold start (assemble + first cycle) vs shards *)
  let scale, dfz_cfg =
    if fast then ("dfz-smoke", N.Scenario.dfz_smoke) else ("dfz", N.Scenario.dfz)
  in
  let time_cold shards =
    Gc.compact ();
    (* the generator's schedules are pure hashes of the config, so every
       rep rebuilds the identical world; generation stays untimed *)
    let gen = N.Dfz.create dfz_cfg in
    let ctrl =
      Ef.Controller.create
        ~config:(Ef.Config.with_shards shards Ef.Config.default)
        ~obs:(Ef_obs.Registry.create ())
        ~name:(Printf.sprintf "bench-e15-shards%d" shards)
        ()
    in
    let pool =
      if shards <= 1 then None else Some (Ef_util.Pool.global ~jobs:shards ())
    in
    let t0 = Ef_obs.Clock.now_ns () in
    let snap = D.snapshot_of_gen ?pool gen ~time_s:0 in
    ignore (Ef.Controller.cycle ctrl snap);
    Ef_obs.Clock.elapsed_s t0
  in
  let measure_cold shards =
    ignore (time_cold shards);
    min_of_reps (fun () -> time_cold shards)
  in
  let cold_base = measure_cold 1 in
  let cold_rows =
    List.map
      (fun shards ->
        let s = if shards = 1 then cold_base else measure_cold shards in
        let speedup = cold_base /. s in
        Printf.printf "  %-12s shards=%d  %8.2f s  %6.2fx\n%!"
          (scale ^ "-cold") shards s speedup;
        (shards, s, speedup))
      e15_points
  in
  print_newline ();
  (fleet_rows, (scale, cold_rows))

(* BENCH_PR9.json: the multicore acceptance record. The speedup gates
   only mean something where the domains have cores to land on, so the
   verdicts are three-valued: "pass" / "fail" on a >=4-core runner,
   "skipped" (with the observed core count) below that — never a
   silent pass. scripts/bench_report.sh refuses a "skipped" verdict on
   a machine that does have the cores. *)
let write_bench_pr9_json path ~e15:(fleet_rows, (scale, cold_rows)) =
  let module J = Ef_obs.Json in
  let cores = Domain.recommended_domain_count () in
  let speedup_at rows n =
    match List.find_opt (fun (j, _, _) -> j = n) rows with
    | Some (_, _, s) -> s
    | None -> nan
  in
  let fleet4 = speedup_at fleet_rows 4 in
  let cold4 = speedup_at cold_rows 4 in
  let status ok =
    if cores < 4 then "skipped" else if ok then "pass" else "fail"
  in
  let fleet_status = status (fleet4 >= 2.0) in
  let cold_status = status (cold4 >= 1.5) in
  let overall =
    if cores < 4 then "skipped"
    else if fleet_status = "pass" && cold_status = "pass" then "pass"
    else "fail"
  in
  let curve key rows =
    J.List
      (List.map
         (fun (n, s, speedup) ->
           J.Obj
             [
               (key, J.Int n);
               ("wall_s", J.Float s);
               ("speedup", J.Float speedup);
             ])
         rows)
  in
  let json =
    J.Obj
      [
        ("schema", J.String "edge-fabric-bench/1");
        ("pr", J.Int 9);
        ("source", J.String "bench/main.exe e15");
        ("experiment", J.String "e15-multicore");
        ("cores", J.Int cores);
        ("fleet", J.String "gen-16pop");
        ("fleet_curve", curve "jobs" fleet_rows);
        ("dfz_scale", J.String scale);
        ("dfz_cold_curve", curve "shards" cold_rows);
        ( "acceptance",
          J.Obj
            [
              ("cores", J.Int cores);
              ("fleet_jobs4_speedup", J.Float fleet4);
              ("fleet_jobs4_required_min", J.Float 2.0);
              ("fleet_status", J.String fleet_status);
              ("dfz_cold_shards4_speedup", J.Float cold4);
              ("dfz_cold_shards4_required_min", J.Float 1.5);
              ("dfz_cold_status", J.String cold_status);
              ( "note",
                J.String
                  "speedup gates apply on >=4-core runners; \"skipped\" \
                   records the verdict honestly on smaller machines" );
              ("status", J.String overall);
            ] );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string json);
      output_char oc '\n');
  Printf.printf
    "wrote %s (fleet jobs=4 %.2fx, %s cold shards=4 %.2fx, status=%s on %d \
     cores)\n\
     %!"
    path fleet4 scale cold4 overall cores

(* ------------------------------------------------------------------ *)
(* Experiment dispatch                                                 *)
(* ------------------------------------------------------------------ *)

let experiments : (string * string * (E.run_params -> Ef_stats.Table.t)) list =
  [
    ("e1", "peering characterization (Table 1)", fun _ -> E.e1_peering ());
    ("e2", "route diversity (Fig. 2)", fun _ -> E.e2_route_diversity ());
    ("e3", "BGP preference mix (Fig. 3)", fun _ -> E.e3_preference_mix ());
    ( "e4",
      "projected overload under BGP alone (Fig. 4)",
      fun p -> E.e4_bgp_only_overload ~params:p () );
    ( "e5",
      "detour volume with Edge Fabric (Fig. 7)",
      fun p -> E.e5_detour_volume ~params:p () );
    ( "e6",
      "detour placement by preference level (Fig. 8)",
      fun p -> E.e6_detour_levels ~params:p () );
    ( "e7",
      "override churn + hysteresis ablation (Fig. 9, A2)",
      fun p -> E.e7_override_churn ~params:p () );
    ( "e8",
      "alternate-path RTT quality (Fig. 10)",
      fun p -> E.e8_altpath_quality ~params:p () );
    ( "e9",
      "RTT impact of detours at peak (§6)",
      fun p -> E.e9_detour_rtt_impact ~params:p () );
    ( "e12",
      "performance-aware routing extension (§7)",
      fun p -> E.e12_perf_aware ~params:p () );
    ("a1", "iterative vs single-pass allocator", fun p -> E.a1_single_pass ~params:p ());
    ("a3", "overload threshold sweep", fun p -> E.a3_threshold_sweep ~params:p ());
    ("a4", "detour granularity", fun p -> E.a4_granularity ~params:p ());
  ]

let run_one params (id, title, f) =
  Printf.printf "== %s: %s ==\n%!" (String.uppercase_ascii id) title;
  Ef_stats.Table.print (f params)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "json-check"; path ] -> json_check path
  | _ ->
      let fast = List.mem "fast" args in
      let json_out =
        List.find_map
          (fun a ->
            if String.length a > 5 && String.sub a 0 5 = "json=" then
              Some (String.sub a 5 (String.length a - 5))
            else None)
          args
      in
      let params =
        if fast then { E.default_params with E.cycle_s = 600 }
        else E.default_params
      in
      let run_micro_suite () =
        let micro = run_micro ~fast () in
        let e10d = run_e10d ~fast () in
        run_stage_attribution ();
        run_trace_overhead ();
        let e11 = run_e11_fleet ~fast () in
        Option.iter
          (fun path -> write_bench_json path ~micro ~e10d ~e11)
          json_out
      in
      let selected =
        List.filter
          (fun a ->
            a <> "fast" && not (String.length a > 5 && String.sub a 0 5 = "json="))
          args
      in
      (match selected with
      | [] | [ "all" ] ->
          List.iter (run_one params) experiments;
          run_micro_suite ();
          ignore (run_e15_multicore ~fast ())
      | ids ->
          List.iter
            (fun id ->
              if id = "micro" then run_micro_suite ()
              else if id = "e11" then ignore (run_e11_fleet ~fast ())
              else if id = "e13" then
                let dfz = run_e13_dfz ~fast () in
                Option.iter (fun path -> write_bench_pr7_json path ~dfz) json_out
              else if id = "e14" then
                let e14 = run_e14_health ~fast () in
                Option.iter (fun path -> write_bench_pr8_json path ~e14) json_out
              else if id = "e15" then
                let e15 = run_e15_multicore ~fast () in
                Option.iter (fun path -> write_bench_pr9_json path ~e15) json_out
              else if id = "e16" then
                let e16 = run_e16_flap ~fast () in
                Option.iter (fun path -> write_bench_pr10_json path ~e16) json_out
              else
                match List.find_opt (fun (i, _, _) -> i = id) experiments with
                | Some exp -> run_one params exp
                | None ->
                    Printf.eprintf
                      "unknown experiment %S (known: %s, e11, e13, e14, e15, \
                       e16, micro, all; modifiers: fast, json=FILE)\n"
                      id
                      (String.concat ", "
                         (List.map (fun (i, _, _) -> i) experiments));
                    exit 1)
            ids)
