(* ef_netsim: Region, Iface, Pop, Topo_gen, Latency, Scenario *)

module Bgp = Ef_bgp
module N = Ef_netsim
open Helpers

let world () = N.Topo_gen.generate N.Topo_gen.small_config

let test_region_symmetry () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Helpers.check_float "symmetric" (N.Region.base_rtt_ms a b)
            (N.Region.base_rtt_ms b a))
        N.Region.all)
    N.Region.all

let test_region_local_smaller () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (N.Region.equal a b) then
            Alcotest.(check bool) "local < remote" true
              (N.Region.base_rtt_ms a a < N.Region.base_rtt_ms a b))
        N.Region.all)
    N.Region.all

let test_region_string_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "roundtrip" true
        (N.Region.of_string (N.Region.to_string r) = Some r))
    N.Region.all

let test_iface_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Iface.make: capacity must be positive") (fun () ->
      ignore (N.Iface.make ~id:0 ~name:"x" ~capacity_bps:0.0 ~shared:false))

let test_pop_construction () =
  let pop =
    N.Pop.create ~name:"test" ~region:N.Region.Europe ~asn:(Bgp.Asn.of_int 64500) ()
  in
  let i0 = N.Pop.add_interface pop ~name:"a" ~capacity_bps:1e9 ~shared:false in
  let i1 = N.Pop.add_interface pop ~name:"b" ~capacity_bps:2e9 ~shared:true in
  Alcotest.(check int) "dense ids" 0 (N.Iface.id i0);
  Alcotest.(check int) "dense ids" 1 (N.Iface.id i1);
  Alcotest.(check int) "count" 2 (N.Pop.interface_count pop);
  Helpers.check_float "total capacity" 3e9 (N.Pop.total_capacity_bps pop);
  let p = peer ~kind:Bgp.Peer.Public_peer 0 in
  N.Pop.add_peer pop p ~iface:i1 ~policy:Bgp.Policy.accept_all;
  Alcotest.(check int) "iface of peer" 1
    (N.Iface.id (N.Pop.iface_of_peer pop ~peer_id:0));
  Alcotest.(check int) "peers on iface" 1
    (List.length (N.Pop.peers_on_iface pop ~iface_id:1));
  Alcotest.(check int) "none on other" 0
    (List.length (N.Pop.peers_on_iface pop ~iface_id:0))

let test_pop_foreign_iface_rejected () =
  let pop1 =
    N.Pop.create ~name:"p1" ~region:N.Region.Europe ~asn:(Bgp.Asn.of_int 64500) ()
  in
  let pop2 =
    N.Pop.create ~name:"p2" ~region:N.Region.Europe ~asn:(Bgp.Asn.of_int 64501) ()
  in
  let foreign = N.Pop.add_interface pop2 ~name:"x" ~capacity_bps:1e9 ~shared:false in
  (* same dense id exists in pop1? no interfaces at all: must refuse *)
  Alcotest.check_raises "foreign iface"
    (Invalid_argument "Pop.add_peer: interface not part of this PoP") (fun () ->
      N.Pop.add_peer pop1 (peer 0) ~iface:foreign ~policy:Bgp.Policy.accept_all)

(* --- Topo_gen invariants --------------------------------------------- *)

let test_world_deterministic () =
  let w1 = world () and w2 = world () in
  Alcotest.(check int) "same prefix count"
    (List.length w1.N.Topo_gen.all_prefixes)
    (List.length w2.N.Topo_gen.all_prefixes);
  List.iter2
    (fun p1 p2 -> Alcotest.check prefix_t "same prefixes" p1 p2)
    w1.N.Topo_gen.all_prefixes w2.N.Topo_gen.all_prefixes;
  let peers1 = N.Pop.peers w1.N.Topo_gen.pop
  and peers2 = N.Pop.peers w2.N.Topo_gen.pop in
  Alcotest.(check (list int)) "same peers"
    (List.map Bgp.Peer.id peers1)
    (List.map Bgp.Peer.id peers2)

let test_world_weights_normalised () =
  let w = world () in
  let total =
    List.fold_left
      (fun acc p -> acc +. w.N.Topo_gen.prefix_weight p)
      0.0 w.N.Topo_gen.all_prefixes
  in
  Helpers.check_float_eps 1e-6 "weights sum to 1" 1.0 total

let test_world_prefixes_unique_and_owned () =
  let w = world () in
  let sorted = List.sort Bgp.Prefix.compare w.N.Topo_gen.all_prefixes in
  let rec no_dup = function
    | a :: (b :: _ as rest) ->
        if Bgp.Prefix.equal a b then Alcotest.fail "duplicate prefix";
        no_dup rest
    | [ _ ] | [] -> ()
  in
  no_dup sorted;
  List.iter
    (fun p ->
      Alcotest.(check bool) "has origin" true
        (Option.is_some (w.N.Topo_gen.prefix_origin p)))
    w.N.Topo_gen.all_prefixes

let test_world_every_prefix_routable () =
  let w = world () in
  let rib = N.Pop.rib w.N.Topo_gen.pop in
  List.iter
    (fun p ->
      let routes = Bgp.Rib.ranked rib p in
      if routes = [] then
        Alcotest.failf "%s has no routes" (Bgp.Prefix.to_string p);
      (* transit provides a route for everything, so >= n_transits *)
      if List.length routes < N.Topo_gen.small_config.N.Topo_gen.n_transits then
        Alcotest.failf "%s has too few routes" (Bgp.Prefix.to_string p))
    w.N.Topo_gen.all_prefixes

let test_world_transit_routes_everywhere () =
  let w = world () in
  let rib = N.Pop.rib w.N.Topo_gen.pop in
  List.iter
    (fun p ->
      let routes = Bgp.Rib.ranked rib p in
      Alcotest.(check bool) "has transit candidate" true
        (List.exists (fun r -> Bgp.Route.peer_kind r = Bgp.Peer.Transit) routes))
    w.N.Topo_gen.all_prefixes

let test_world_private_peers_preferred_for_own_prefixes () =
  let w = world () in
  let rib = N.Pop.rib w.N.Topo_gen.pop in
  let private_asns =
    List.filter_map
      (fun p ->
        if Bgp.Peer.kind p = Bgp.Peer.Private_peer then Some (Bgp.Peer.asn p)
        else None)
      (N.Pop.peers w.N.Topo_gen.pop)
  in
  Alcotest.(check bool) "has private peers" true (private_asns <> []);
  List.iter
    (fun a ->
      match
        List.find_opt
          (fun ai -> Bgp.Asn.equal ai.N.Topo_gen.asn a)
          w.N.Topo_gen.ases
      with
      | None -> ()
      | Some ai ->
          List.iter
            (fun p ->
              match Bgp.Rib.best rib p with
              | None -> Alcotest.fail "no best"
              | Some r ->
                  Alcotest.(check bool) "best is private peer" true
                    (Bgp.Route.peer_kind r = Bgp.Peer.Private_peer))
            ai.N.Topo_gen.as_prefixes)
    private_asns

let test_world_port_sizes_standardish () =
  let w = N.Topo_gen.generate N.Topo_gen.default_config in
  List.iter
    (fun iface ->
      let gbps = N.Iface.capacity_bps iface /. 1e9 in
      let ok =
        if gbps <= 100.0 then Float.rem gbps 10.0 = 0.0
        else Float.rem gbps 100.0 = 0.0
        (* transit/IXP port capacities come straight from the config *)
        || N.Iface.shared iface
        || String.length (N.Iface.name iface) > 7
           && String.sub (N.Iface.name iface) 0 7 = "transit"
      in
      if not ok then
        Alcotest.failf "odd port size %s: %f" (N.Iface.name iface) gbps)
    (N.Pop.interfaces w.N.Topo_gen.pop)

let test_round_up_to_port () =
  Helpers.check_float "small" 10.0 (N.Topo_gen.round_up_to_port 0.5);
  Helpers.check_float "mid" 40.0 (N.Topo_gen.round_up_to_port 33.0);
  Helpers.check_float "exact" 100.0 (N.Topo_gen.round_up_to_port 100.0);
  Helpers.check_float "big" 300.0 (N.Topo_gen.round_up_to_port 233.0)

(* --- Latency ---------------------------------------------------------- *)

let latency_model w =
  N.Latency.create
    ~pop_region:(N.Pop.region w.N.Topo_gen.pop)
    ~origin_region:w.N.Topo_gen.origin_region ~seed:99

let test_latency_deterministic () =
  let w = world () in
  let l = latency_model w in
  let rib = N.Pop.rib w.N.Topo_gen.pop in
  let p = List.hd w.N.Topo_gen.all_prefixes in
  match Bgp.Rib.best rib p with
  | None -> Alcotest.fail "no route"
  | Some r ->
      Helpers.check_float "same twice" (N.Latency.base_rtt_ms l p r)
        (N.Latency.base_rtt_ms l p r)

let test_latency_positive () =
  let w = world () in
  let l = latency_model w in
  let rib = N.Pop.rib w.N.Topo_gen.pop in
  List.iter
    (fun p ->
      List.iter
        (fun r ->
          let rtt = N.Latency.base_rtt_ms l p r in
          if rtt <= 0.0 then Alcotest.failf "non-positive rtt %f" rtt)
        (Bgp.Rib.ranked rib p))
    w.N.Topo_gen.all_prefixes

let test_congestion_penalty_shape () =
  Helpers.check_float "none below knee" 0.0
    (N.Latency.congestion_penalty_ms ~utilization:0.5);
  Helpers.check_float "none at knee" 0.0
    (N.Latency.congestion_penalty_ms ~utilization:0.9);
  let mid = N.Latency.congestion_penalty_ms ~utilization:1.0 in
  let high = N.Latency.congestion_penalty_ms ~utilization:1.1 in
  Alcotest.(check bool) "grows" true (0.0 < mid && mid < high);
  Helpers.check_float "caps" 150.0
    (N.Latency.congestion_penalty_ms ~utilization:2.0)

let test_congested_rtt_higher () =
  let w = world () in
  let l = latency_model w in
  let rib = N.Pop.rib w.N.Topo_gen.pop in
  let p = List.hd w.N.Topo_gen.all_prefixes in
  match Bgp.Rib.best rib p with
  | None -> Alcotest.fail "no route"
  | Some r ->
      Alcotest.(check bool) "congestion inflates" true
        (N.Latency.rtt_ms l p r ~utilization:1.1
        > N.Latency.rtt_ms l p r ~utilization:0.3)

let test_scenarios_generate () =
  List.iter
    (fun s ->
      if s.N.Scenario.scenario_name <> "stress" then begin
        let w = N.Topo_gen.generate s.N.Scenario.topo in
        Alcotest.(check bool)
          (s.N.Scenario.scenario_name ^ " nonempty")
          true
          (w.N.Topo_gen.all_prefixes <> [])
      end)
    N.Scenario.all

let test_scenario_find () =
  Alcotest.(check bool) "finds pop-a" true (Option.is_some (N.Scenario.find "pop-a"));
  Alcotest.(check bool) "unknown" true (Option.is_none (N.Scenario.find "nope"));
  Alcotest.(check int) "paper pops" 4 (List.length N.Scenario.paper_pops)

let suite =
  [
    Alcotest.test_case "region symmetry" `Quick test_region_symmetry;
    Alcotest.test_case "region local smaller" `Quick test_region_local_smaller;
    Alcotest.test_case "region string roundtrip" `Quick test_region_string_roundtrip;
    Alcotest.test_case "iface validation" `Quick test_iface_validation;
    Alcotest.test_case "pop construction" `Quick test_pop_construction;
    Alcotest.test_case "pop foreign iface" `Quick test_pop_foreign_iface_rejected;
    Alcotest.test_case "world deterministic" `Quick test_world_deterministic;
    Alcotest.test_case "world weights normalised" `Quick
      test_world_weights_normalised;
    Alcotest.test_case "world prefixes unique+owned" `Quick
      test_world_prefixes_unique_and_owned;
    Alcotest.test_case "world every prefix routable" `Quick
      test_world_every_prefix_routable;
    Alcotest.test_case "world transit everywhere" `Quick
      test_world_transit_routes_everywhere;
    Alcotest.test_case "world private preferred" `Quick
      test_world_private_peers_preferred_for_own_prefixes;
    Alcotest.test_case "world port sizes" `Quick test_world_port_sizes_standardish;
    Alcotest.test_case "round up to port" `Quick test_round_up_to_port;
    Alcotest.test_case "latency deterministic" `Quick test_latency_deterministic;
    Alcotest.test_case "latency positive" `Quick test_latency_positive;
    Alcotest.test_case "congestion penalty shape" `Quick
      test_congestion_penalty_shape;
    Alcotest.test_case "congested rtt higher" `Quick test_congested_rtt_higher;
    Alcotest.test_case "scenarios generate" `Quick test_scenarios_generate;
    Alcotest.test_case "scenario find" `Quick test_scenario_find;
  ]
