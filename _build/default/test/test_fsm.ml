(* ef_bgp: session FSM *)

module Bgp = Ef_bgp
open Helpers

let config =
  Bgp.Fsm.default_config ~local_asn:(Bgp.Asn.of_int 64500)
    ~local_id:(ip "10.0.0.1")

let peer_open ?(asn = 64501) ?(hold_time = 90) () =
  match
    Bgp.Msg.make_open ~hold_time ~asn:(Bgp.Asn.of_int asn) ~bgp_id:(ip "10.0.0.2") ()
  with
  | Bgp.Msg.Open o -> o
  | _ -> assert false

(* drive a fresh FSM to Established, returning it *)
let established () =
  let fsm = Bgp.Fsm.create config in
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Manual_start);
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Tcp_connected);
  ignore (Bgp.Fsm.handle fsm (Bgp.Fsm.Received (Bgp.Msg.Open (peer_open ()))));
  ignore (Bgp.Fsm.handle fsm (Bgp.Fsm.Received Bgp.Msg.Keepalive));
  fsm

let has_action pred actions = List.exists pred actions

let is_send_open = function
  | Bgp.Fsm.Send (Bgp.Msg.Open _) -> true
  | _ -> false

let is_send_keepalive = function
  | Bgp.Fsm.Send Bgp.Msg.Keepalive -> true
  | _ -> false

let is_send_notification = function
  | Bgp.Fsm.Send (Bgp.Msg.Notification _) -> true
  | _ -> false

let state_t = Alcotest.testable Bgp.Fsm.pp_state ( = )

let test_happy_path () =
  let fsm = Bgp.Fsm.create config in
  Alcotest.check state_t "starts idle" Bgp.Fsm.Idle (Bgp.Fsm.state fsm);

  let actions = Bgp.Fsm.handle fsm Bgp.Fsm.Manual_start in
  Alcotest.check state_t "connect" Bgp.Fsm.Connect (Bgp.Fsm.state fsm);
  Alcotest.(check bool) "wants tcp" true
    (has_action (( = ) Bgp.Fsm.Connect_tcp) actions);

  let actions = Bgp.Fsm.handle fsm Bgp.Fsm.Tcp_connected in
  Alcotest.check state_t "open sent" Bgp.Fsm.Open_sent (Bgp.Fsm.state fsm);
  Alcotest.(check bool) "sends OPEN" true (has_action is_send_open actions);

  let actions = Bgp.Fsm.handle fsm (Bgp.Fsm.Received (Bgp.Msg.Open (peer_open ()))) in
  Alcotest.check state_t "open confirm" Bgp.Fsm.Open_confirm (Bgp.Fsm.state fsm);
  Alcotest.(check bool) "sends KEEPALIVE" true (has_action is_send_keepalive actions);

  let actions = Bgp.Fsm.handle fsm (Bgp.Fsm.Received Bgp.Msg.Keepalive) in
  Alcotest.check state_t "established" Bgp.Fsm.Established (Bgp.Fsm.state fsm);
  Alcotest.(check bool) "session up" true
    (has_action (( = ) Bgp.Fsm.Session_up) actions)

let test_hold_time_negotiation () =
  let fsm = Bgp.Fsm.create config in
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Manual_start);
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Tcp_connected);
  ignore
    (Bgp.Fsm.handle fsm
       (Bgp.Fsm.Received (Bgp.Msg.Open (peer_open ~hold_time:30 ()))));
  Alcotest.(check (option int)) "min of offers" (Some 30)
    (Bgp.Fsm.negotiated_hold_time fsm)

let test_update_delivery () =
  let fsm = established () in
  let update = { Bgp.Msg.withdrawn = [ prefix "10.0.0.0/8" ]; attrs = None; nlri = [] } in
  let actions = Bgp.Fsm.handle fsm (Bgp.Fsm.Received (Bgp.Msg.Update update)) in
  Alcotest.(check bool) "delivers" true
    (has_action (function Bgp.Fsm.Deliver_update _ -> true | _ -> false) actions);
  Alcotest.check state_t "still established" Bgp.Fsm.Established (Bgp.Fsm.state fsm)

let test_hold_timer_expiry () =
  let fsm = established () in
  let actions = Bgp.Fsm.handle fsm (Bgp.Fsm.Timer_expired Bgp.Fsm.Hold_timer) in
  Alcotest.check state_t "back to idle" Bgp.Fsm.Idle (Bgp.Fsm.state fsm);
  Alcotest.(check bool) "notifies peer" true (has_action is_send_notification actions);
  Alcotest.(check bool) "reports down" true
    (has_action (function Bgp.Fsm.Session_down _ -> true | _ -> false) actions)

let test_keepalive_timer () =
  let fsm = established () in
  let actions = Bgp.Fsm.handle fsm (Bgp.Fsm.Timer_expired Bgp.Fsm.Keepalive_timer) in
  Alcotest.(check bool) "sends keepalive" true (has_action is_send_keepalive actions);
  Alcotest.check state_t "stays established" Bgp.Fsm.Established (Bgp.Fsm.state fsm)

let test_notification_teardown () =
  let fsm = established () in
  let actions =
    Bgp.Fsm.handle fsm (Bgp.Fsm.Received (Bgp.Msg.cease ()))
  in
  Alcotest.check state_t "idle" Bgp.Fsm.Idle (Bgp.Fsm.state fsm);
  (* peer sent the notification; we must not send one back *)
  Alcotest.(check bool) "no notification reply" false
    (has_action is_send_notification actions)

let test_tcp_failure_retries () =
  let fsm = Bgp.Fsm.create config in
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Manual_start);
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Tcp_failed);
  Alcotest.check state_t "active" Bgp.Fsm.Active (Bgp.Fsm.state fsm);
  let actions =
    Bgp.Fsm.handle fsm (Bgp.Fsm.Timer_expired Bgp.Fsm.Connect_retry_timer)
  in
  Alcotest.check state_t "reconnecting" Bgp.Fsm.Connect (Bgp.Fsm.state fsm);
  Alcotest.(check bool) "retries tcp" true
    (has_action (( = ) Bgp.Fsm.Connect_tcp) actions)

let test_wrong_asn_refused () =
  let config = { config with Bgp.Fsm.remote_asn = Some (Bgp.Asn.of_int 64501) } in
  let fsm = Bgp.Fsm.create config in
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Manual_start);
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Tcp_connected);
  let actions =
    Bgp.Fsm.handle fsm (Bgp.Fsm.Received (Bgp.Msg.Open (peer_open ~asn:666 ())))
  in
  Alcotest.check state_t "refused" Bgp.Fsm.Idle (Bgp.Fsm.state fsm);
  Alcotest.(check bool) "notification sent" true
    (has_action is_send_notification actions)

let test_update_before_open_is_fsm_error () =
  let fsm = Bgp.Fsm.create config in
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Manual_start);
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Tcp_connected);
  let actions = Bgp.Fsm.handle fsm (Bgp.Fsm.Received Bgp.Msg.Keepalive) in
  Alcotest.check state_t "torn down" Bgp.Fsm.Idle (Bgp.Fsm.state fsm);
  Alcotest.(check bool) "fsm error" true (has_action is_send_notification actions)

let test_manual_stop_sends_cease () =
  let fsm = established () in
  let actions = Bgp.Fsm.handle fsm Bgp.Fsm.Manual_stop in
  Alcotest.check state_t "idle" Bgp.Fsm.Idle (Bgp.Fsm.state fsm);
  Alcotest.(check bool) "cease" true
    (has_action
       (function
         | Bgp.Fsm.Send (Bgp.Msg.Notification { code = Bgp.Msg.Cease _; _ }) -> true
         | _ -> false)
       actions)

let test_events_in_idle_ignored () =
  let fsm = Bgp.Fsm.create config in
  Alcotest.(check int) "tcp events ignored" 0
    (List.length (Bgp.Fsm.handle fsm Bgp.Fsm.Tcp_connected));
  Alcotest.(check int) "messages ignored" 0
    (List.length (Bgp.Fsm.handle fsm (Bgp.Fsm.Received Bgp.Msg.Keepalive)))

let test_session_restart_after_teardown () =
  let fsm = established () in
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Tcp_closed);
  Alcotest.check state_t "idle after close" Bgp.Fsm.Idle (Bgp.Fsm.state fsm);
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Manual_start);
  ignore (Bgp.Fsm.handle fsm Bgp.Fsm.Tcp_connected);
  ignore (Bgp.Fsm.handle fsm (Bgp.Fsm.Received (Bgp.Msg.Open (peer_open ()))));
  ignore (Bgp.Fsm.handle fsm (Bgp.Fsm.Received Bgp.Msg.Keepalive));
  Alcotest.check state_t "re-established" Bgp.Fsm.Established (Bgp.Fsm.state fsm)

(* random event sequences never raise and never reach Established without
   the proper handshake *)
let qcheck_fsm_total =
  let gen_event =
    QCheck.Gen.oneofl
      [
        Bgp.Fsm.Manual_start;
        Bgp.Fsm.Manual_stop;
        Bgp.Fsm.Tcp_connected;
        Bgp.Fsm.Tcp_failed;
        Bgp.Fsm.Tcp_closed;
        Bgp.Fsm.Timer_expired Bgp.Fsm.Hold_timer;
        Bgp.Fsm.Timer_expired Bgp.Fsm.Keepalive_timer;
        Bgp.Fsm.Timer_expired Bgp.Fsm.Connect_retry_timer;
        Bgp.Fsm.Received Bgp.Msg.Keepalive;
        Bgp.Fsm.Received (Bgp.Msg.Open (peer_open ()));
        Bgp.Fsm.Received (Bgp.Msg.cease ());
      ]
  in
  QCheck.Test.make ~name:"fsm total on random event sequences" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 50) gen_event))
    (fun events ->
      let fsm = Bgp.Fsm.create config in
      List.iter (fun e -> ignore (Bgp.Fsm.handle fsm e)) events;
      true)

let suite =
  [
    Alcotest.test_case "happy path to established" `Quick test_happy_path;
    Alcotest.test_case "hold time negotiation" `Quick test_hold_time_negotiation;
    Alcotest.test_case "update delivery" `Quick test_update_delivery;
    Alcotest.test_case "hold timer expiry" `Quick test_hold_timer_expiry;
    Alcotest.test_case "keepalive timer" `Quick test_keepalive_timer;
    Alcotest.test_case "notification teardown" `Quick test_notification_teardown;
    Alcotest.test_case "tcp failure retries" `Quick test_tcp_failure_retries;
    Alcotest.test_case "wrong asn refused" `Quick test_wrong_asn_refused;
    Alcotest.test_case "message before open" `Quick
      test_update_before_open_is_fsm_error;
    Alcotest.test_case "manual stop sends cease" `Quick test_manual_stop_sends_cease;
    Alcotest.test_case "events in idle ignored" `Quick test_events_in_idle_ignored;
    Alcotest.test_case "session restart" `Quick test_session_restart_after_teardown;
    QCheck_alcotest.to_alcotest qcheck_fsm_total;
  ]
