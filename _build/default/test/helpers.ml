(* Shared fixtures for the test suites. *)

module Bgp = Ef_bgp

let prefix = Bgp.Prefix.v
let ip = Bgp.Ipv4.of_string

let peer ?(kind = Bgp.Peer.Transit) ?(asn = 65001) id =
  Bgp.Peer.make ~id
    ~name:(Printf.sprintf "peer%d" id)
    ~asn:(Bgp.Asn.of_int asn) ~kind
    ~router_id:(Bgp.Ipv4.of_octets 10 0 0 id)
    ~session_addr:(Bgp.Ipv4.of_octets 172 16 0 id)

let attrs ?(origin = Bgp.Attrs.Igp) ?(med = None) ?(local_pref = None)
    ?(communities = []) ?(path = [ 65001; 65002 ]) ?(next_hop = "172.16.0.1") ()
    =
  Bgp.Attrs.make ~origin ~med ~local_pref ~communities
    ~as_path:(Bgp.As_path.of_list (List.map Bgp.Asn.of_int path))
    ~next_hop:(ip next_hop) ()

let route ?(prefix_str = "10.0.0.0/24") ?kind ?asn ?(peer_id = 1) ?origin ?med
    ?local_pref ?communities ?path ?next_hop () =
  Bgp.Route.make
    ~prefix:(prefix prefix_str)
    ~attrs:(attrs ?origin ?med ?local_pref ?communities ?path ?next_hop ())
    ~peer:(peer ?kind ?asn peer_id)

(* Alcotest testables *)
let prefix_t = Alcotest.testable Bgp.Prefix.pp Bgp.Prefix.equal
let ipv4_t = Alcotest.testable Bgp.Ipv4.pp Bgp.Ipv4.equal
let msg_t = Alcotest.testable Bgp.Msg.pp Bgp.Msg.equal
let route_t = Alcotest.testable Bgp.Route.pp Bgp.Route.equal

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))

let string_contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0
