(* ef_bgp: Ipv4, Prefix, Ptrie *)

module Bgp = Ef_bgp
open Helpers

let test_ipv4_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Bgp.Ipv4.to_string (Bgp.Ipv4.of_string s)))
    [ "0.0.0.0"; "10.1.2.3"; "192.168.255.1"; "255.255.255.255"; "128.0.0.1" ]

let test_ipv4_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Option.is_none (Bgp.Ipv4.of_string_opt s)))
    [ "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; ""; "1.2.3.-4"; "01.2.3.4567" ]

let test_ipv4_unsigned_compare () =
  let low = ip "1.0.0.0" and high = ip "255.0.0.0" in
  Alcotest.(check bool) "255 > 1" true (Bgp.Ipv4.compare high low > 0);
  Alcotest.(check bool) "1 < 255" true (Bgp.Ipv4.compare low high < 0);
  Alcotest.(check int) "equal" 0 (Bgp.Ipv4.compare low low)

let test_ipv4_succ_wraps () =
  Alcotest.check ipv4_t "wrap" (ip "0.0.0.0") (Bgp.Ipv4.succ Bgp.Ipv4.broadcast);
  Alcotest.check ipv4_t "succ" (ip "10.0.1.0")
    (Bgp.Ipv4.succ (ip "10.0.0.255"))

let test_ipv4_mask () =
  Alcotest.check ipv4_t "mask 24" (ip "10.1.2.0")
    (Bgp.Ipv4.apply_mask (ip "10.1.2.3") 24);
  Alcotest.check ipv4_t "mask 0" (ip "0.0.0.0")
    (Bgp.Ipv4.apply_mask (ip "200.1.2.3") 0);
  Alcotest.check ipv4_t "mask 32" (ip "10.1.2.3")
    (Bgp.Ipv4.apply_mask (ip "10.1.2.3") 32)

let test_ipv4_bit () =
  let a = ip "128.0.0.1" in
  Alcotest.(check bool) "bit 0" true (Bgp.Ipv4.bit a 0);
  Alcotest.(check bool) "bit 1" false (Bgp.Ipv4.bit a 1);
  Alcotest.(check bool) "bit 31" true (Bgp.Ipv4.bit a 31)

let test_prefix_normalises () =
  Alcotest.check prefix_t "host bits zeroed" (prefix "10.1.2.0/24")
    (Bgp.Prefix.make (ip "10.1.2.99") 24)

let test_prefix_parse () =
  Alcotest.(check string) "roundtrip" "10.0.0.0/8"
    (Bgp.Prefix.to_string (prefix "10.0.0.0/8"));
  Alcotest.(check bool) "bad length" true
    (Option.is_none (Bgp.Prefix.of_string_opt "10.0.0.0/33"));
  Alcotest.(check bool) "no slash" true
    (Option.is_none (Bgp.Prefix.of_string_opt "10.0.0.0"))

let test_prefix_mem () =
  let p = prefix "10.1.0.0/16" in
  Alcotest.(check bool) "inside" true (Bgp.Prefix.mem (ip "10.1.200.3") p);
  Alcotest.(check bool) "outside" false (Bgp.Prefix.mem (ip "10.2.0.0") p)

let test_prefix_subsumes () =
  Alcotest.(check bool) "parent subsumes child" true
    (Bgp.Prefix.subsumes (prefix "10.0.0.0/8") (prefix "10.1.2.0/24"));
  Alcotest.(check bool) "self subsumes" true
    (Bgp.Prefix.subsumes (prefix "10.0.0.0/8") (prefix "10.0.0.0/8"));
  Alcotest.(check bool) "child does not subsume parent" false
    (Bgp.Prefix.subsumes (prefix "10.1.2.0/24") (prefix "10.0.0.0/8"));
  Alcotest.(check bool) "siblings" false
    (Bgp.Prefix.subsumes (prefix "10.1.0.0/16") (prefix "10.2.0.0/16"))

let test_prefix_split () =
  let l, r = Bgp.Prefix.split (prefix "10.0.0.0/8") in
  Alcotest.check prefix_t "left" (prefix "10.0.0.0/9") l;
  Alcotest.check prefix_t "right" (prefix "10.128.0.0/9") r;
  Alcotest.check_raises "cannot split /32"
    (Invalid_argument "Prefix.split: /32 has no children") (fun () ->
      ignore (Bgp.Prefix.split (prefix "1.2.3.4/32")))

let test_prefix_subnets () =
  let subs = Bgp.Prefix.subnets (prefix "10.0.0.0/22") 24 in
  Alcotest.(check int) "count" 4 (List.length subs);
  Alcotest.check prefix_t "first" (prefix "10.0.0.0/24") (List.nth subs 0);
  Alcotest.check prefix_t "last" (prefix "10.0.3.0/24") (List.nth subs 3);
  List.iter
    (fun s ->
      Alcotest.(check bool) "covered" true
        (Bgp.Prefix.subsumes (prefix "10.0.0.0/22") s))
    subs

let test_prefix_size () =
  Helpers.check_float "/24" 256.0 (Bgp.Prefix.size (prefix "10.0.0.0/24"));
  Helpers.check_float "/32" 1.0 (Bgp.Prefix.size (prefix "10.0.0.1/32"))

(* --- Ptrie ----------------------------------------------------------- *)

let test_ptrie_add_find () =
  let t =
    Bgp.Ptrie.empty
    |> Bgp.Ptrie.add (prefix "10.0.0.0/8") "eight"
    |> Bgp.Ptrie.add (prefix "10.1.0.0/16") "sixteen"
  in
  Alcotest.(check (option string)) "exact /8" (Some "eight")
    (Bgp.Ptrie.find (prefix "10.0.0.0/8") t);
  Alcotest.(check (option string)) "exact /16" (Some "sixteen")
    (Bgp.Ptrie.find (prefix "10.1.0.0/16") t);
  Alcotest.(check (option string)) "absent" None
    (Bgp.Ptrie.find (prefix "10.1.2.0/24") t)

let test_ptrie_replace () =
  let t =
    Bgp.Ptrie.empty
    |> Bgp.Ptrie.add (prefix "10.0.0.0/8") 1
    |> Bgp.Ptrie.add (prefix "10.0.0.0/8") 2
  in
  Alcotest.(check (option int)) "replaced" (Some 2)
    (Bgp.Ptrie.find (prefix "10.0.0.0/8") t);
  Alcotest.(check int) "cardinal" 1 (Bgp.Ptrie.cardinal t)

let test_ptrie_remove () =
  let p = prefix "10.0.0.0/8" in
  let t = Bgp.Ptrie.add p 1 Bgp.Ptrie.empty in
  let t = Bgp.Ptrie.remove p t in
  Alcotest.(check bool) "empty" true (Bgp.Ptrie.is_empty t);
  (* removing from empty is a no-op *)
  Alcotest.(check bool) "still empty" true
    (Bgp.Ptrie.is_empty (Bgp.Ptrie.remove p t))

let test_ptrie_longest_match () =
  let t =
    Bgp.Ptrie.of_list
      [
        (prefix "10.0.0.0/8", "coarse");
        (prefix "10.1.0.0/16", "mid");
        (prefix "10.1.2.0/24", "fine");
      ]
  in
  let check_lpm addr expect =
    match Bgp.Ptrie.longest_match (ip addr) t with
    | None -> Alcotest.failf "no match for %s" addr
    | Some (_, v) -> Alcotest.(check string) addr expect v
  in
  check_lpm "10.1.2.3" "fine";
  check_lpm "10.1.3.1" "mid";
  check_lpm "10.99.0.1" "coarse";
  Alcotest.(check bool) "no match" true
    (Option.is_none (Bgp.Ptrie.longest_match (ip "11.0.0.1") t))

let test_ptrie_matches_order () =
  let t =
    Bgp.Ptrie.of_list
      [ (prefix "10.0.0.0/8", 8); (prefix "10.1.0.0/16", 16); (prefix "0.0.0.0/0", 0) ]
  in
  let ms = Bgp.Ptrie.matches (ip "10.1.5.5") t in
  Alcotest.(check (list int)) "most specific first" [ 16; 8; 0 ]
    (List.map snd ms)

let test_ptrie_default_route () =
  let t = Bgp.Ptrie.add Bgp.Prefix.default "default" Bgp.Ptrie.empty in
  Alcotest.(check bool) "matches everything" true
    (Option.is_some (Bgp.Ptrie.longest_match (ip "203.0.113.7") t))

let test_ptrie_fold_order () =
  let ps =
    [ prefix "10.1.2.0/24"; prefix "10.0.0.0/8"; prefix "192.168.0.0/16" ]
  in
  let t = Bgp.Ptrie.of_list (List.map (fun p -> (p, ())) ps) in
  let keys = Bgp.Ptrie.keys t in
  Alcotest.(check int) "count" 3 (List.length keys);
  let sorted = List.sort Bgp.Prefix.compare keys in
  Alcotest.(check bool) "ascending" true (keys = sorted)

let test_ptrie_fold_reconstructs_prefixes () =
  let ps =
    [
      prefix "0.0.0.0/0";
      prefix "128.0.0.0/1";
      prefix "10.1.2.0/24";
      prefix "255.255.255.255/32";
    ]
  in
  let t = Bgp.Ptrie.of_list (List.map (fun p -> (p, ())) ps) in
  let keys = Bgp.Ptrie.keys t in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Bgp.Prefix.to_string p)
        true
        (List.exists (Bgp.Prefix.equal p) keys))
    ps

let test_ptrie_update () =
  let p = prefix "10.0.0.0/8" in
  let t = Bgp.Ptrie.empty in
  let t = Bgp.Ptrie.update p (function None -> Some 1 | Some n -> Some (n + 1)) t in
  let t = Bgp.Ptrie.update p (function None -> Some 1 | Some n -> Some (n + 1)) t in
  Alcotest.(check (option int)) "incremented" (Some 2) (Bgp.Ptrie.find p t);
  let t = Bgp.Ptrie.update p (fun _ -> None) t in
  Alcotest.(check bool) "deleted" true (Bgp.Ptrie.is_empty t)

let test_ptrie_covered () =
  let t =
    Bgp.Ptrie.of_list
      [
        (prefix "10.0.0.0/8", ());
        (prefix "10.1.0.0/16", ());
        (prefix "10.1.2.0/24", ());
        (prefix "11.0.0.0/8", ());
      ]
  in
  let covered = Bgp.Ptrie.covered (prefix "10.1.0.0/16") t in
  Alcotest.(check int) "two covered" 2 (List.length covered)

let test_ptrie_union () =
  let a = Bgp.Ptrie.of_list [ (prefix "10.0.0.0/8", 1); (prefix "11.0.0.0/8", 1) ] in
  let b = Bgp.Ptrie.of_list [ (prefix "10.0.0.0/8", 10); (prefix "12.0.0.0/8", 1) ] in
  let u = Bgp.Ptrie.union ( + ) a b in
  Alcotest.(check int) "cardinal" 3 (Bgp.Ptrie.cardinal u);
  Alcotest.(check (option int)) "merged" (Some 11)
    (Bgp.Ptrie.find (prefix "10.0.0.0/8") u)

(* --- property tests --------------------------------------------------- *)

let gen_prefix =
  QCheck.Gen.(
    map2
      (fun addr len -> Bgp.Prefix.make (Bgp.Ipv4.of_int32 (Int32.of_int addr)) len)
      (int_bound 0xFFFFFF) (int_range 4 32))

let arb_prefix = QCheck.make ~print:Bgp.Prefix.to_string gen_prefix

let qcheck_trie_vs_assoc_lpm =
  (* trie LPM must agree with a naive scan over the bindings *)
  QCheck.Test.make ~name:"ptrie LPM = naive LPM" ~count:300
    QCheck.(pair (list_of_size Gen.(int_range 0 40) arb_prefix) (int_bound 0xFFFFFFF))
    (fun (prefixes, addr_raw) ->
      let addr = Bgp.Ipv4.of_int32 (Int32.of_int addr_raw) in
      let bindings = List.map (fun p -> (p, Bgp.Prefix.to_string p)) prefixes in
      let t = Bgp.Ptrie.of_list bindings in
      let naive =
        List.fold_left
          (fun acc (p, v) ->
            if Bgp.Prefix.mem addr p then
              match acc with
              | Some (q, _) when Bgp.Prefix.length q >= Bgp.Prefix.length p -> acc
              | _ -> Some (p, v)
            else acc)
          None bindings
      in
      match (Bgp.Ptrie.longest_match addr t, naive) with
      | None, None -> true
      | Some (p1, _), Some (p2, _) -> Bgp.Prefix.equal p1 p2
      | _ -> false)

let qcheck_trie_add_remove_roundtrip =
  QCheck.Test.make ~name:"ptrie add/remove roundtrip" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 30) arb_prefix)
    (fun prefixes ->
      let uniq = List.sort_uniq Bgp.Prefix.compare prefixes in
      let t = Bgp.Ptrie.of_list (List.map (fun p -> (p, ())) uniq) in
      let emptied = List.fold_left (fun t p -> Bgp.Ptrie.remove p t) t uniq in
      Bgp.Ptrie.cardinal t = List.length uniq && Bgp.Ptrie.is_empty emptied)

let qcheck_prefix_subnets_cover =
  QCheck.Test.make ~name:"subnets partition the parent" ~count:200
    QCheck.(
      pair
        (make ~print:Bgp.Prefix.to_string
           Gen.(
             map2
               (fun addr len ->
                 Bgp.Prefix.make (Bgp.Ipv4.of_int32 (Int32.of_int addr)) len)
               (int_bound 0xFFFFFF) (int_range 8 24)))
        (int_range 0 4))
    (fun (parent, extra) ->
      let len = min 28 (Bgp.Prefix.length parent + extra) in
      let subs = Bgp.Prefix.subnets parent len in
      List.length subs = 1 lsl (len - Bgp.Prefix.length parent)
      && List.for_all (fun s -> Bgp.Prefix.subsumes parent s) subs)

let suite =
  [
    Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 parse errors" `Quick test_ipv4_parse_errors;
    Alcotest.test_case "ipv4 unsigned compare" `Quick test_ipv4_unsigned_compare;
    Alcotest.test_case "ipv4 succ wraps" `Quick test_ipv4_succ_wraps;
    Alcotest.test_case "ipv4 mask" `Quick test_ipv4_mask;
    Alcotest.test_case "ipv4 bit" `Quick test_ipv4_bit;
    Alcotest.test_case "prefix normalises" `Quick test_prefix_normalises;
    Alcotest.test_case "prefix parse" `Quick test_prefix_parse;
    Alcotest.test_case "prefix mem" `Quick test_prefix_mem;
    Alcotest.test_case "prefix subsumes" `Quick test_prefix_subsumes;
    Alcotest.test_case "prefix split" `Quick test_prefix_split;
    Alcotest.test_case "prefix subnets" `Quick test_prefix_subnets;
    Alcotest.test_case "prefix size" `Quick test_prefix_size;
    Alcotest.test_case "ptrie add/find" `Quick test_ptrie_add_find;
    Alcotest.test_case "ptrie replace" `Quick test_ptrie_replace;
    Alcotest.test_case "ptrie remove" `Quick test_ptrie_remove;
    Alcotest.test_case "ptrie longest match" `Quick test_ptrie_longest_match;
    Alcotest.test_case "ptrie matches order" `Quick test_ptrie_matches_order;
    Alcotest.test_case "ptrie default route" `Quick test_ptrie_default_route;
    Alcotest.test_case "ptrie fold order" `Quick test_ptrie_fold_order;
    Alcotest.test_case "ptrie fold reconstructs" `Quick
      test_ptrie_fold_reconstructs_prefixes;
    Alcotest.test_case "ptrie update" `Quick test_ptrie_update;
    Alcotest.test_case "ptrie covered" `Quick test_ptrie_covered;
    Alcotest.test_case "ptrie union" `Quick test_ptrie_union;
    QCheck_alcotest.to_alcotest qcheck_trie_vs_assoc_lpm;
    QCheck_alcotest.to_alcotest qcheck_trie_add_remove_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_prefix_subnets_cover;
  ]
