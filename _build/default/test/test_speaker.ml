(* ef_bgp: two sans-IO speakers talking over an in-memory wire *)

module Bgp = Ef_bgp
open Helpers

(* A pair of speakers, each knowing the other as peer id 1. Effects are
   pumped through an in-memory "network" until quiescent. *)
type pair = {
  a : Bgp.Speaker.t;
  b : Bgp.Speaker.t;
}

let make_pair () =
  let a =
    Bgp.Speaker.create ~asn:(Bgp.Asn.of_int 64500) ~router_id:(ip "10.0.0.1") ()
  in
  let b =
    Bgp.Speaker.create ~asn:(Bgp.Asn.of_int 64501) ~router_id:(ip "10.0.0.2") ()
  in
  let peer_b = peer ~kind:Bgp.Peer.Transit ~asn:64501 1 in
  let peer_a = peer ~kind:Bgp.Peer.Transit ~asn:64500 1 in
  Bgp.Speaker.add_session a peer_b ~policy:Bgp.Policy.accept_all;
  Bgp.Speaker.add_session b peer_a ~policy:Bgp.Policy.accept_all;
  { a; b }

(* A tiny TCP simulation: effects are queued and processed in order; the
   first Request_connect completes the three-way handshake on both ends
   (so both sides emit their OPENs into a live connection, as on a real
   socket pair), and every Write is delivered to the other side. *)
let pump pair side effects =
  let queue = Queue.create () in
  List.iter (fun e -> Queue.push (side, e) queue) effects;
  let connected = ref false in
  while not (Queue.is_empty queue) do
    let side, effect_ = Queue.pop queue in
    let other = if side = `A then `B else `A in
    let speaker_of = function
      | `A -> pair.a
      | `B -> pair.b
    in
    let push s effs = List.iter (fun e -> Queue.push (s, e) queue) effs in
    match effect_ with
    | Bgp.Speaker.Write { data; _ } ->
        push other (Bgp.Speaker.receive_bytes (speaker_of other) ~peer_id:1 data)
    | Bgp.Speaker.Request_connect _ ->
        if not !connected then begin
          connected := true;
          push side (Bgp.Speaker.tcp_connected (speaker_of side) ~peer_id:1);
          push other (Bgp.Speaker.tcp_connected (speaker_of other) ~peer_id:1)
        end
    | Bgp.Speaker.Drop_connection _ | Bgp.Speaker.Set_timer _
    | Bgp.Speaker.Clear_timer _ | Bgp.Speaker.Rib_changed _
    | Bgp.Speaker.Peer_up _ | Bgp.Speaker.Peer_down _ ->
        ()
  done

let establish pair =
  (* both ends are configured active, as real deployments do *)
  let ea = Bgp.Speaker.start pair.a ~peer_id:1 in
  let eb = Bgp.Speaker.start pair.b ~peer_id:1 in
  pump pair `B eb;
  pump pair `A ea

let test_handshake_establishes_both () =
  let pair = make_pair () in
  establish pair;
  Alcotest.(check (option string)) "a established" (Some "Established")
    (Option.map Bgp.Fsm.state_to_string (Bgp.Speaker.session_state pair.a ~peer_id:1));
  Alcotest.(check (option string)) "b established" (Some "Established")
    (Option.map Bgp.Fsm.state_to_string (Bgp.Speaker.session_state pair.b ~peer_id:1));
  Alcotest.(check (list int)) "a sees peer" [ 1 ] (Bgp.Speaker.established_peers pair.a)

let test_update_propagates_to_rib () =
  let pair = make_pair () in
  establish pair;
  let update =
    {
      Bgp.Msg.withdrawn = [];
      attrs = Some (attrs ~path:[ 64501; 7 ] ~next_hop:"172.16.0.1" ());
      nlri = [ prefix "203.0.113.0/24" ];
    }
  in
  (* b originates a route; a's RIB must learn it through the wire *)
  pump pair `B (Bgp.Speaker.send_update pair.b ~peer_id:1 update);
  match Bgp.Rib.best (Bgp.Speaker.rib pair.a) (prefix "203.0.113.0/24") with
  | None -> Alcotest.fail "route did not arrive"
  | Some r ->
      Alcotest.(check int) "learned from peer 1" 1 (Bgp.Route.peer_id r);
      Alcotest.(check int) "path intact" 2 (Bgp.Route.as_path_length r)

let test_withdraw_propagates () =
  let pair = make_pair () in
  establish pair;
  let announce =
    {
      Bgp.Msg.withdrawn = [];
      attrs = Some (attrs ~path:[ 64501; 7 ] ());
      nlri = [ prefix "203.0.113.0/24" ];
    }
  in
  pump pair `B (Bgp.Speaker.send_update pair.b ~peer_id:1 announce);
  let withdraw =
    { Bgp.Msg.withdrawn = [ prefix "203.0.113.0/24" ]; attrs = None; nlri = [] }
  in
  pump pair `B (Bgp.Speaker.send_update pair.b ~peer_id:1 withdraw);
  Alcotest.(check bool) "withdrawn" true
    (Option.is_none (Bgp.Rib.best (Bgp.Speaker.rib pair.a) (prefix "203.0.113.0/24")))

let test_send_before_established_is_noop () =
  let pair = make_pair () in
  let update =
    {
      Bgp.Msg.withdrawn = [];
      attrs = Some (attrs ());
      nlri = [ prefix "203.0.113.0/24" ];
    }
  in
  Alcotest.(check int) "nothing sent" 0
    (List.length (Bgp.Speaker.send_update pair.a ~peer_id:1 update))

let test_garbage_bytes_tear_down () =
  let pair = make_pair () in
  establish pair;
  let effects =
    Bgp.Speaker.receive_bytes pair.a ~peer_id:1 (String.make 19 '\x00')
  in
  Alcotest.(check bool) "notification emitted" true
    (List.exists
       (function Bgp.Speaker.Write _ -> true | _ -> false)
       effects);
  Alcotest.(check (option string)) "a back to idle" (Some "Idle")
    (Option.map Bgp.Fsm.state_to_string (Bgp.Speaker.session_state pair.a ~peer_id:1))

let test_session_loss_flushes_routes () =
  let pair = make_pair () in
  establish pair;
  let update =
    {
      Bgp.Msg.withdrawn = [];
      attrs = Some (attrs ~path:[ 64501; 7 ] ());
      nlri = [ prefix "203.0.113.0/24" ];
    }
  in
  pump pair `B (Bgp.Speaker.send_update pair.b ~peer_id:1 update);
  Alcotest.(check bool) "route present" true
    (Option.is_some (Bgp.Rib.best (Bgp.Speaker.rib pair.a) (prefix "203.0.113.0/24")));
  let effects = Bgp.Speaker.tcp_closed pair.a ~peer_id:1 in
  Alcotest.(check bool) "rib flush reported" true
    (List.exists
       (function Bgp.Speaker.Rib_changed _ -> true | _ -> false)
       effects);
  Alcotest.(check bool) "route flushed" true
    (Option.is_none (Bgp.Rib.best (Bgp.Speaker.rib pair.a) (prefix "203.0.113.0/24")))

let test_route_refresh_re_dumps () =
  let pair = make_pair () in
  establish pair;
  (* b originates a prefix, a receives it *)
  pump pair `B (Bgp.Speaker.originate pair.b (prefix "198.51.100.0/24"));
  Alcotest.(check bool) "a learned it" true
    (Option.is_some (Bgp.Rib.best (Bgp.Speaker.rib pair.a) (prefix "198.51.100.0/24")));
  (* simulate a losing its RIB state out-of-band (e.g. a policy rework):
     flush and ask b to resend via ROUTE-REFRESH *)
  ignore (Bgp.Rib.drop_peer (Bgp.Speaker.rib pair.a) ~peer_id:1);
  Alcotest.(check bool) "flushed" true
    (Option.is_none (Bgp.Rib.best (Bgp.Speaker.rib pair.a) (prefix "198.51.100.0/24")));
  pump pair `A (Bgp.Speaker.request_refresh pair.a ~peer_id:1);
  Alcotest.(check bool) "relearned after refresh" true
    (Option.is_some (Bgp.Rib.best (Bgp.Speaker.rib pair.a) (prefix "198.51.100.0/24")))

let suite =
  [
    Alcotest.test_case "handshake establishes both" `Quick
      test_handshake_establishes_both;
    Alcotest.test_case "update propagates" `Quick test_update_propagates_to_rib;
    Alcotest.test_case "withdraw propagates" `Quick test_withdraw_propagates;
    Alcotest.test_case "send before established" `Quick
      test_send_before_established_is_noop;
    Alcotest.test_case "garbage tears down" `Quick test_garbage_bytes_tear_down;
    Alcotest.test_case "session loss flushes" `Quick test_session_loss_flushes_routes;
    Alcotest.test_case "route refresh re-dumps" `Quick test_route_refresh_re_dumps;
  ]
