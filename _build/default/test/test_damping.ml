(* ef_bgp: route-flap damping *)

module Bgp = Ef_bgp
open Helpers

let p = prefix "10.0.0.0/16"
let d ?config () = Bgp.Damping.create ?config ()

let flap t ~now_s =
  Bgp.Damping.record t ~now_s ~prefix:p ~peer_id:1 Bgp.Damping.Withdrawal;
  Bgp.Damping.record t ~now_s ~prefix:p ~peer_id:1 Bgp.Damping.Readvertisement

let test_single_flap_not_suppressed () =
  let t = d () in
  flap t ~now_s:0;
  (* one withdraw + one re-announce = 1500 < 2000 *)
  Alcotest.(check bool) "not suppressed" false
    (Bgp.Damping.is_suppressed t ~now_s:0 ~prefix:p ~peer_id:1);
  Helpers.check_float "penalty" 1500.0
    (Bgp.Damping.penalty t ~now_s:0 ~prefix:p ~peer_id:1)

let test_repeated_flaps_suppress () =
  let t = d () in
  flap t ~now_s:0;
  flap t ~now_s:10;
  Alcotest.(check bool) "suppressed" true
    (Bgp.Damping.is_suppressed t ~now_s:10 ~prefix:p ~peer_id:1);
  Alcotest.(check int) "counted" 1 (Bgp.Damping.suppressed_count t ~now_s:10)

let test_decay_releases () =
  let t = d () in
  flap t ~now_s:0;
  flap t ~now_s:10;
  Alcotest.(check bool) "suppressed now" true
    (Bgp.Damping.is_suppressed t ~now_s:10 ~prefix:p ~peer_id:1);
  (* penalty ~3000; two half-lives (1800 s) bring it to ~750, a bit more
     decays under reuse *)
  Alcotest.(check bool) "still suppressed after one half-life" true
    (Bgp.Damping.is_suppressed t ~now_s:(10 + 900) ~prefix:p ~peer_id:1);
  Alcotest.(check bool) "released after enough decay" false
    (Bgp.Damping.is_suppressed t ~now_s:(10 + 2000) ~prefix:p ~peer_id:1)

let test_reuse_time_estimate () =
  let t = d () in
  flap t ~now_s:0;
  flap t ~now_s:0;
  match Bgp.Damping.reuse_time t ~now_s:0 ~prefix:p ~peer_id:1 with
  | None -> Alcotest.fail "should be suppressed"
  | Some dt ->
      (* penalty 3000 -> reuse 750 takes exactly 2 half-lives = 1800 s *)
      Alcotest.(check bool) "about two half-lives" true (abs (dt - 1800) <= 2);
      (* and indeed it is released at that moment *)
      Alcotest.(check bool) "released at reuse time" false
        (Bgp.Damping.is_suppressed t ~now_s:(dt + 1) ~prefix:p ~peer_id:1)

let test_hysteresis_between_thresholds () =
  let t = d () in
  flap t ~now_s:0;
  flap t ~now_s:0;
  (* decay to between reuse (750) and suppress (2000): one half-life
     leaves 1500 — still suppressed because the latch holds *)
  Alcotest.(check bool) "latched" true
    (Bgp.Damping.is_suppressed t ~now_s:900 ~prefix:p ~peer_id:1);
  (* a never-suppressed route with the same penalty is NOT suppressed *)
  let q = prefix "10.99.0.0/16" in
  Bgp.Damping.record t ~now_s:900 ~prefix:q ~peer_id:1 Bgp.Damping.Withdrawal;
  Bgp.Damping.record t ~now_s:900 ~prefix:q ~peer_id:1 Bgp.Damping.Attribute_change;
  Alcotest.(check bool) "same penalty, not latched" false
    (Bgp.Damping.is_suppressed t ~now_s:900 ~prefix:q ~peer_id:1)

let test_penalty_ceiling () =
  let t = d () in
  for i = 0 to 50 do
    flap t ~now_s:i
  done;
  Alcotest.(check bool) "capped" true
    (Bgp.Damping.penalty t ~now_s:50 ~prefix:p ~peer_id:1 <= 16000.0)

let test_per_peer_isolation () =
  let t = d () in
  flap t ~now_s:0;
  flap t ~now_s:0;
  Alcotest.(check bool) "peer 1 suppressed" true
    (Bgp.Damping.is_suppressed t ~now_s:0 ~prefix:p ~peer_id:1);
  Alcotest.(check bool) "peer 2 unaffected" false
    (Bgp.Damping.is_suppressed t ~now_s:0 ~prefix:p ~peer_id:2);
  Helpers.check_float "peer 2 penalty" 0.0
    (Bgp.Damping.penalty t ~now_s:0 ~prefix:p ~peer_id:2)

let test_sweep () =
  let t = d () in
  flap t ~now_s:0;
  Bgp.Damping.sweep t ~now_s:0;
  Alcotest.(check bool) "recent entry kept" true
    (Bgp.Damping.penalty t ~now_s:0 ~prefix:p ~peer_id:1 > 0.0);
  (* after ~11 half-lives 1500 -> < 1 *)
  Bgp.Damping.sweep t ~now_s:(11 * 900);
  Helpers.check_float "swept" 0.0
    (Bgp.Damping.penalty t ~now_s:(11 * 900) ~prefix:p ~peer_id:1)

let test_config_validation () =
  Alcotest.check_raises "reuse >= suppress"
    (Invalid_argument "Damping.create: reuse must be below suppress") (fun () ->
      ignore
        (Bgp.Damping.create
           ~config:
             { Bgp.Damping.default_config with Bgp.Damping.reuse_threshold = 3000.0 }
           ()))

let suite =
  [
    Alcotest.test_case "single flap ok" `Quick test_single_flap_not_suppressed;
    Alcotest.test_case "repeat flaps suppress" `Quick test_repeated_flaps_suppress;
    Alcotest.test_case "decay releases" `Quick test_decay_releases;
    Alcotest.test_case "reuse time" `Quick test_reuse_time_estimate;
    Alcotest.test_case "threshold hysteresis" `Quick
      test_hysteresis_between_thresholds;
    Alcotest.test_case "penalty ceiling" `Quick test_penalty_ceiling;
    Alcotest.test_case "per-peer isolation" `Quick test_per_peer_isolation;
    Alcotest.test_case "sweep" `Quick test_sweep;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
