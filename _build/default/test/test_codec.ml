(* ef_bgp: RFC 4271 wire codec *)

module Bgp = Ef_bgp
open Helpers

let roundtrip msg =
  let wire = Bgp.Codec.encode msg in
  match Bgp.Codec.decode wire with
  | Error e -> Alcotest.failf "decode failed: %s" (Bgp.Codec.error_to_string e)
  | Ok (decoded, consumed) ->
      Alcotest.(check int) "consumed all" (String.length wire) consumed;
      decoded

let test_keepalive_roundtrip () =
  Alcotest.check msg_t "keepalive" Bgp.Msg.Keepalive (roundtrip Bgp.Msg.Keepalive)

let test_keepalive_wire_format () =
  let wire = Bgp.Codec.encode Bgp.Msg.Keepalive in
  Alcotest.(check int) "19 bytes" 19 (String.length wire);
  for i = 0 to 15 do
    Alcotest.(check char) "marker" '\xFF' wire.[i]
  done;
  Alcotest.(check int) "type 4" 4 (Char.code wire.[18])

let test_open_roundtrip () =
  let msg = Bgp.Msg.make_open ~asn:(Bgp.Asn.of_int 64500) ~bgp_id:(ip "10.0.0.1") () in
  Alcotest.check msg_t "open" msg (roundtrip msg)

let test_open_4byte_asn () =
  (* an ASN above 65535 goes through AS_TRANS + capability *)
  let msg =
    Bgp.Msg.make_open ~asn:(Bgp.Asn.of_int 4_200_000_000) ~bgp_id:(ip "1.2.3.4") ()
  in
  match roundtrip msg with
  | Bgp.Msg.Open o ->
      Alcotest.(check int) "asn recovered" 4_200_000_000 (Bgp.Asn.to_int o.Bgp.Msg.my_as)
  | m -> Alcotest.failf "expected OPEN, got %s" (Bgp.Msg.kind_to_string m)

let test_open_capabilities_roundtrip () =
  let caps =
    [
      Bgp.Msg.Multiprotocol { afi = 1; safi = 1 };
      Bgp.Msg.Route_refresh;
      Bgp.Msg.Four_octet_as (Bgp.Asn.of_int 64500);
      Bgp.Msg.Unknown_capability { code = 99; data = "ab" };
    ]
  in
  let msg =
    Bgp.Msg.make_open ~capabilities:caps ~asn:(Bgp.Asn.of_int 64500)
      ~bgp_id:(ip "10.0.0.1") ()
  in
  Alcotest.check msg_t "caps survive" msg (roundtrip msg)

let full_attrs =
  attrs ~origin:Bgp.Attrs.Egp ~med:(Some 42) ~local_pref:(Some 400)
    ~communities:[ Bgp.Community.make 65000 911; Bgp.Community.no_export ]
    ~path:[ 64500; 4200000000; 7 ] ~next_hop:"192.0.2.1" ()

let test_update_roundtrip () =
  let msg =
    Bgp.Msg.make_update
      ~withdrawn:[ prefix "10.9.0.0/16"; prefix "10.10.0.0/24" ]
      ~attrs:full_attrs
      ~nlri:[ prefix "203.0.113.0/24"; prefix "198.51.100.0/25" ]
      ()
  in
  Alcotest.check msg_t "update" msg (roundtrip msg)

let test_update_withdraw_only () =
  let msg = Bgp.Msg.make_update ~withdrawn:[ prefix "10.0.0.0/8" ] () in
  Alcotest.check msg_t "withdraw" msg (roundtrip msg)

let test_update_prefix_lengths () =
  (* prefix encoding is length-dependent: exercise /0, /1, /8, /15, /24, /32 *)
  let nlri =
    [
      prefix "0.0.0.0/0";
      prefix "128.0.0.0/1";
      prefix "10.0.0.0/8";
      prefix "10.2.0.0/15";
      prefix "10.1.2.0/24";
      prefix "10.1.2.3/32";
    ]
  in
  let msg = Bgp.Msg.make_update ~attrs:full_attrs ~nlri () in
  Alcotest.check msg_t "all lengths" msg (roundtrip msg)

let test_update_as_set_roundtrip () =
  let attrs =
    Bgp.Attrs.make
      ~as_path:
        (Bgp.As_path.of_segments
           [
             Bgp.As_path.Seq [ Bgp.Asn.of_int 1; Bgp.Asn.of_int 2 ];
             Bgp.As_path.Set [ Bgp.Asn.of_int 3; Bgp.Asn.of_int 4 ];
           ])
      ~next_hop:(ip "10.0.0.9") ()
  in
  let msg = Bgp.Msg.make_update ~attrs ~nlri:[ prefix "10.0.0.0/8" ] () in
  Alcotest.check msg_t "as-set" msg (roundtrip msg)

let test_route_refresh_roundtrip () =
  let msg = Bgp.Msg.Route_refresh { afi = 1; safi = 1 } in
  Alcotest.check msg_t "route refresh" msg (roundtrip msg);
  (* wire shape: 19-byte header + afi(2) + reserved(1) + safi(1) *)
  Alcotest.(check int) "23 bytes" 23 (String.length (Bgp.Codec.encode msg))

let test_notification_roundtrip () =
  List.iter
    (fun code ->
      let msg = Bgp.Msg.Notification { code; data = "detail" } in
      Alcotest.check msg_t "notification" msg (roundtrip msg))
    [
      Bgp.Msg.Message_header_error 2;
      Bgp.Msg.Open_message_error 1;
      Bgp.Msg.Update_message_error 3;
      Bgp.Msg.Hold_timer_expired;
      Bgp.Msg.Fsm_error;
      Bgp.Msg.Cease 4;
    ]

let test_decode_truncated () =
  let wire = Bgp.Codec.encode Bgp.Msg.Keepalive in
  match Bgp.Codec.decode (String.sub wire 0 10) with
  | Error Bgp.Codec.Truncated -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Bgp.Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "decoded truncated input"

let test_decode_bad_marker () =
  let wire = Bytes.of_string (Bgp.Codec.encode Bgp.Msg.Keepalive) in
  Bytes.set wire 3 '\x00';
  match Bgp.Codec.decode (Bytes.to_string wire) with
  | Error Bgp.Codec.Bad_marker -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Bgp.Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted bad marker"

let test_decode_bad_length () =
  let wire = Bytes.of_string (Bgp.Codec.encode Bgp.Msg.Keepalive) in
  (* claim a length of 5 (below the 19-byte minimum) *)
  Bytes.set wire 16 '\x00';
  Bytes.set wire 17 '\x05';
  match Bgp.Codec.decode (Bytes.to_string wire) with
  | Error (Bgp.Codec.Bad_length 5) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Bgp.Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted bad length"

let test_decode_unknown_type () =
  let wire = Bytes.of_string (Bgp.Codec.encode Bgp.Msg.Keepalive) in
  Bytes.set wire 18 '\x09';
  match Bgp.Codec.decode (Bytes.to_string wire) with
  | Error (Bgp.Codec.Unknown_msg_type 9) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Bgp.Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted unknown type"

let test_decode_update_missing_mandatory_attr () =
  (* hand-build an UPDATE with NLRI but no attributes: must be rejected *)
  let body = Bytes.create 8 in
  Bytes.set_uint16_be body 0 0 (* withdrawn len *);
  Bytes.set_uint16_be body 2 0 (* attrs len *);
  (* NLRI: 10.0.0.0/8 *)
  Bytes.set body 4 '\x08';
  Bytes.set body 5 '\x0A';
  let body = Bytes.sub body 0 6 in
  let total = 19 + Bytes.length body in
  let wire = Buffer.create total in
  Buffer.add_string wire (String.make 16 '\xFF');
  Buffer.add_char wire (Char.chr (total lsr 8));
  Buffer.add_char wire (Char.chr (total land 0xFF));
  Buffer.add_char wire '\x02';
  Buffer.add_bytes wire body;
  match Bgp.Codec.decode (Buffer.contents wire) with
  | Error (Bgp.Codec.Malformed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Bgp.Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted UPDATE without mandatory attributes"

let test_stream_reassembly () =
  let msgs =
    [
      Bgp.Msg.make_open ~asn:(Bgp.Asn.of_int 64500) ~bgp_id:(ip "10.0.0.1") ();
      Bgp.Msg.Keepalive;
      Bgp.Msg.make_update ~attrs:full_attrs ~nlri:[ prefix "10.0.0.0/8" ] ();
    ]
  in
  let wire = String.concat "" (List.map Bgp.Codec.encode msgs) in
  let stream = Bgp.Codec.Stream.create () in
  (* feed byte by byte: the decoder must reassemble *)
  let received = ref [] in
  String.iter
    (fun c ->
      Bgp.Codec.Stream.feed stream (String.make 1 c);
      match Bgp.Codec.Stream.next stream with
      | Ok (Some m) -> received := m :: !received
      | Ok None -> ()
      | Error e -> Alcotest.failf "stream error: %s" (Bgp.Codec.error_to_string e))
    wire;
  Alcotest.(check (list msg_t)) "all messages" msgs (List.rev !received);
  Alcotest.(check int) "no leftovers" 0 (Bgp.Codec.Stream.pending_bytes stream)

let test_stream_error_sticky () =
  let stream = Bgp.Codec.Stream.create () in
  Bgp.Codec.Stream.feed stream (String.make 19 '\x00');
  (match Bgp.Codec.Stream.next stream with
  | Error Bgp.Codec.Bad_marker -> ()
  | _ -> Alcotest.fail "expected marker error");
  (* errors are sticky even if valid bytes arrive later *)
  Bgp.Codec.Stream.feed stream (Bgp.Codec.encode Bgp.Msg.Keepalive);
  match Bgp.Codec.Stream.next stream with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stream recovered after fatal error"

(* --- property: roundtrip over generated updates ---------------------- *)

let gen_update =
  QCheck.Gen.(
    let gen_prefix =
      map2
        (fun addr len -> Bgp.Prefix.make (Bgp.Ipv4.of_int32 (Int32.of_int addr)) len)
        (int_bound 0xFFFFFF) (int_range 0 32)
    in
    let gen_asn = map Bgp.Asn.of_int (int_range 1 100000) in
    let gen_attrs =
      map2
        (fun (path, nh) (med, lp, comms) ->
          Bgp.Attrs.make
            ~origin:Bgp.Attrs.Igp
            ~med:(if med mod 2 = 0 then Some (med * 7) else None)
            ~local_pref:(if lp mod 2 = 0 then Some lp else None)
            ~communities:
              (List.map (fun c -> Bgp.Community.make (c mod 65536) (c mod 997)) comms)
            ~as_path:(Bgp.As_path.of_list path)
            ~next_hop:(Bgp.Ipv4.of_int32 (Int32.of_int nh))
            ())
        (pair (list_size (int_range 1 6) gen_asn) (int_bound 0xFFFFFF))
        (triple small_nat small_nat (list_size (int_range 0 5) small_nat))
    in
    map3
      (fun withdrawn attrs nlri ->
        if nlri = [] then Bgp.Msg.make_update ~withdrawn ()
        else Bgp.Msg.make_update ~withdrawn ~attrs ~nlri ())
      (list_size (int_range 0 5) gen_prefix)
      gen_attrs
      (list_size (int_range 0 8) gen_prefix))

let qcheck_update_roundtrip =
  QCheck.Test.make ~name:"codec UPDATE roundtrip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Bgp.Msg.pp) gen_update)
    (fun msg ->
      let wire = Bgp.Codec.encode msg in
      match Bgp.Codec.decode wire with
      | Ok (decoded, consumed) ->
          consumed = String.length wire && Bgp.Msg.equal msg decoded
      | Error _ -> false)

let qcheck_decode_never_crashes =
  QCheck.Test.make ~name:"codec decode total on garbage" ~count:1000
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun junk ->
      match Bgp.Codec.decode junk with
      | Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "keepalive roundtrip" `Quick test_keepalive_roundtrip;
    Alcotest.test_case "keepalive wire format" `Quick test_keepalive_wire_format;
    Alcotest.test_case "open roundtrip" `Quick test_open_roundtrip;
    Alcotest.test_case "open 4-byte asn" `Quick test_open_4byte_asn;
    Alcotest.test_case "open capabilities" `Quick test_open_capabilities_roundtrip;
    Alcotest.test_case "update roundtrip" `Quick test_update_roundtrip;
    Alcotest.test_case "update withdraw only" `Quick test_update_withdraw_only;
    Alcotest.test_case "update prefix lengths" `Quick test_update_prefix_lengths;
    Alcotest.test_case "update as-set" `Quick test_update_as_set_roundtrip;
    Alcotest.test_case "route refresh roundtrip" `Quick
      test_route_refresh_roundtrip;
    Alcotest.test_case "notification roundtrip" `Quick test_notification_roundtrip;
    Alcotest.test_case "decode truncated" `Quick test_decode_truncated;
    Alcotest.test_case "decode bad marker" `Quick test_decode_bad_marker;
    Alcotest.test_case "decode bad length" `Quick test_decode_bad_length;
    Alcotest.test_case "decode unknown type" `Quick test_decode_unknown_type;
    Alcotest.test_case "decode update missing attrs" `Quick
      test_decode_update_missing_mandatory_attr;
    Alcotest.test_case "stream reassembly" `Quick test_stream_reassembly;
    Alcotest.test_case "stream error sticky" `Quick test_stream_error_sticky;
    QCheck_alcotest.to_alcotest qcheck_update_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_decode_never_crashes;
  ]
