(* ef_collector: Trace record/replay *)

module Bgp = Ef_bgp
module N = Ef_netsim
module C = Ef_collector
module Ef = Edge_fabric
open Helpers

let world = lazy (N.Topo_gen.generate N.Topo_gen.small_config)

let sample_snapshot ?(time_s = 72000) () =
  let w = Lazy.force world in
  let rates =
    List.map
      (fun p -> (p, w.N.Topo_gen.prefix_weight p *. w.N.Topo_gen.total_peak_bps))
      w.N.Topo_gen.all_prefixes
  in
  C.Snapshot.of_pop w.N.Topo_gen.pop ~prefix_rates:rates ~time_s

let roundtrip snap =
  match C.Trace.parse (C.Trace.record snap) with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_roundtrip_preserves_rates () =
  let snap = sample_snapshot () in
  let replayed = roundtrip snap in
  Alcotest.(check int) "time" (C.Snapshot.time_s snap) (C.Snapshot.time_s replayed);
  Alcotest.(check int) "prefix count" (C.Snapshot.prefix_count snap)
    (C.Snapshot.prefix_count replayed);
  List.iter2
    (fun (p1, r1) (p2, r2) ->
      Alcotest.check prefix_t "same prefix order" p1 p2;
      Helpers.check_float_eps 0.01 "same rate" r1 r2)
    (C.Snapshot.prefix_rates snap)
    (C.Snapshot.prefix_rates replayed)

let test_roundtrip_preserves_routes () =
  let snap = sample_snapshot () in
  let replayed = roundtrip snap in
  List.iter
    (fun (p, _) ->
      let orig = C.Snapshot.routes snap p in
      let got = C.Snapshot.routes replayed p in
      Alcotest.(check (list int)) "same ranked peers"
        (List.map Bgp.Route.peer_id orig)
        (List.map Bgp.Route.peer_id got);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "same attrs" true
            (Bgp.Attrs.equal (Bgp.Route.attrs a) (Bgp.Route.attrs b)))
        orig got)
    (C.Snapshot.prefix_rates snap)

let test_roundtrip_preserves_ifaces () =
  let snap = sample_snapshot () in
  let replayed = roundtrip snap in
  List.iter2
    (fun a b ->
      Alcotest.(check int) "id" (N.Iface.id a) (N.Iface.id b);
      Alcotest.(check string) "name" (N.Iface.name a) (N.Iface.name b);
      Helpers.check_float "capacity" (N.Iface.capacity_bps a) (N.Iface.capacity_bps b);
      Alcotest.(check bool) "shared" (N.Iface.shared a) (N.Iface.shared b))
    (C.Snapshot.ifaces snap)
    (C.Snapshot.ifaces replayed);
  (* the peer -> interface mapping survives too *)
  List.iter
    (fun (p, _) ->
      match C.Snapshot.preferred_route snap p with
      | None -> ()
      | Some r -> (
          let peer_id = Bgp.Route.peer_id r in
          match
            ( C.Snapshot.iface_of_peer snap ~peer_id,
              C.Snapshot.iface_of_peer replayed ~peer_id )
          with
          | Some a, Some b -> Alcotest.(check int) "iface" (N.Iface.id a) (N.Iface.id b)
          | None, None -> ()
          | _ -> Alcotest.fail "iface mapping lost"))
    (C.Snapshot.prefix_rates snap)

let test_controller_decisions_replayable () =
  (* the property that makes traces useful: the controller reaches the
     same decisions on the replayed snapshot *)
  let snap = sample_snapshot () in
  let replayed = roundtrip snap in
  let decide s =
    let result = Ef.Allocator.run ~config:Ef.Config.default s in
    List.map
      (fun (o : Ef.Override.t) ->
        (Bgp.Prefix.to_string o.Ef.Override.prefix, Ef.Override.target_peer_id o))
      result.Ef.Allocator.overrides
  in
  Alcotest.(check (list (pair string int))) "same overrides" (decide snap)
    (decide replayed)

let test_record_many_parse_many () =
  let s1 = sample_snapshot ~time_s:100 () in
  let s2 = sample_snapshot ~time_s:200 () in
  match C.Trace.parse_many (C.Trace.record_many [ s1; s2 ]) with
  | Error e -> Alcotest.fail e
  | Ok l ->
      Alcotest.(check (list int)) "times" [ 100; 200 ]
        (List.map C.Snapshot.time_s l)

let test_save_load () =
  let path = Filename.temp_file "ef_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let snap = sample_snapshot () in
      C.Trace.save path [ snap ];
      match C.Trace.load path with
      | Error e -> Alcotest.fail e
      | Ok [ replayed ] ->
          Alcotest.(check int) "prefixes" (C.Snapshot.prefix_count snap)
            (C.Snapshot.prefix_count replayed)
      | Ok l -> Alcotest.failf "expected 1 snapshot, got %d" (List.length l))

let test_parse_errors_are_located () =
  let check_error text fragment =
    match C.Trace.parse_many text with
    | Ok _ -> Alcotest.failf "accepted %S" text
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" msg fragment)
          true
          (Helpers.string_contains ~needle:fragment msg)
  in
  check_error "END\n" "END without SNAPSHOT";
  check_error "SNAPSHOT time=1\nSNAPSHOT time=2\n" "nested";
  check_error "SNAPSHOT time=1\n" "unterminated";
  check_error "SNAPSHOT time=1\nBOGUS x=1\nEND\n" "unknown keyword";
  check_error "SNAPSHOT time=1\nRATE nonsense\nEND\n" "RATE wants";
  check_error
    "SNAPSHOT time=1\nROUTE 10.0.0.0/8 peer=9 origin=IGP path=1 nh=1.2.3.4 med=- lp=- comms=-\nEND\n"
    "unknown peer"

let test_comments_and_blank_lines_ok () =
  let text =
    "# a trace\n\nSNAPSHOT time=5\n# no content\nEND\n\n"
  in
  match C.Trace.parse_many text with
  | Ok [ s ] -> Alcotest.(check int) "time" 5 (C.Snapshot.time_s s)
  | Ok _ | Error _ -> Alcotest.fail "comment handling broken"

let suite =
  [
    Alcotest.test_case "roundtrip rates" `Quick test_roundtrip_preserves_rates;
    Alcotest.test_case "roundtrip routes" `Quick test_roundtrip_preserves_routes;
    Alcotest.test_case "roundtrip ifaces" `Quick test_roundtrip_preserves_ifaces;
    Alcotest.test_case "controller replayable" `Quick
      test_controller_decisions_replayable;
    Alcotest.test_case "record/parse many" `Quick test_record_many_parse_many;
    Alcotest.test_case "save/load" `Quick test_save_load;
    Alcotest.test_case "parse errors located" `Quick test_parse_errors_are_located;
    Alcotest.test_case "comments ok" `Quick test_comments_and_blank_lines_ok;
  ]
