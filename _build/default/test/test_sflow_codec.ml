(* ef_collector: sFlow v5 wire codec *)

module Bgp = Ef_bgp
module C = Ef_collector
module T = Ef_traffic
open Helpers

let sample ?(seq = 1) ?(rate = 128) dst =
  {
    C.Sflow_codec.sample_seq = seq;
    source_id = 7;
    sampling_rate = rate;
    sample_pool = 1000;
    drops = 0;
    packet = { C.Sflow_codec.dst = ip dst; frame_length = 1014 };
  }

let datagram ?(samples = [ sample "10.1.2.3" ]) () =
  {
    C.Sflow_codec.agent = ip "192.0.2.1";
    sub_agent = 0;
    datagram_seq = 42;
    uptime_ms = 123000;
    samples;
  }

let test_roundtrip () =
  let d = datagram ~samples:[ sample "10.1.2.3"; sample ~seq:2 "172.16.9.9" ] () in
  match C.Sflow_codec.decode (C.Sflow_codec.encode d) with
  | Error e -> Alcotest.failf "decode: %s" (Format.asprintf "%a" C.Sflow_codec.pp_error e)
  | Ok got ->
      Alcotest.check ipv4_t "agent" d.C.Sflow_codec.agent got.C.Sflow_codec.agent;
      Alcotest.(check int) "seq" 42 got.C.Sflow_codec.datagram_seq;
      Alcotest.(check int) "samples" 2 (List.length got.C.Sflow_codec.samples);
      List.iter2
        (fun (a : C.Sflow_codec.flow_sample) (b : C.Sflow_codec.flow_sample) ->
          Alcotest.check ipv4_t "dst" a.C.Sflow_codec.packet.C.Sflow_codec.dst
            b.C.Sflow_codec.packet.C.Sflow_codec.dst;
          Alcotest.(check int) "rate" a.C.Sflow_codec.sampling_rate
            b.C.Sflow_codec.sampling_rate;
          Alcotest.(check int) "frame len"
            a.C.Sflow_codec.packet.C.Sflow_codec.frame_length
            b.C.Sflow_codec.packet.C.Sflow_codec.frame_length)
        d.C.Sflow_codec.samples got.C.Sflow_codec.samples

let test_version_pinned () =
  let wire = Bytes.of_string (C.Sflow_codec.encode (datagram ())) in
  (* first u32 must be 5 *)
  Alcotest.(check int) "version" 5 (Char.code (Bytes.get wire 3));
  Bytes.set wire 3 '\x04';
  match C.Sflow_codec.decode (Bytes.to_string wire) with
  | Error (C.Sflow_codec.Bad_version 4) -> ()
  | _ -> Alcotest.fail "accepted wrong version"

let test_truncated () =
  let wire = C.Sflow_codec.encode (datagram ()) in
  match C.Sflow_codec.decode (String.sub wire 0 (String.length wire - 5)) with
  | Error C.Sflow_codec.Truncated -> ()
  | _ -> Alcotest.fail "accepted truncated datagram"

let test_ethertype_checked () =
  let wire = Bytes.of_string (C.Sflow_codec.encode (datagram ())) in
  (* the ethertype lives 12 bytes into the sampled header; find it by
     looking for 0x0800 after the fixed 28+8*4-byte prelude — simpler: flip
     every 0x08 0x00 pair and expect a malformed error *)
  let flipped = ref false in
  for i = 0 to Bytes.length wire - 2 do
    if
      (not !flipped)
      && Bytes.get wire i = '\x08'
      && Bytes.get wire (i + 1) = '\x00'
      && i > 40
    then begin
      Bytes.set wire i '\x86';
      Bytes.set wire (i + 1) '\xdd' (* ipv6 ethertype *);
      flipped := true
    end
  done;
  Alcotest.(check bool) "found ethertype" true !flipped;
  match C.Sflow_codec.decode (Bytes.to_string wire) with
  | Error (C.Sflow_codec.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "accepted non-IPv4 frame"
  | Error e ->
      Alcotest.failf "wrong error: %s" (Format.asprintf "%a" C.Sflow_codec.pp_error e)

let test_datagrams_of_flows_chunking () =
  let rng = Ef_util.Rng.create 3 in
  let flows =
    (* ~3000 packets at 1:16 -> ~190 hits -> ~19 datagrams *)
    T.Flow.generate rng ~prefix:(prefix "10.0.0.0/24") ~rate_bps:8e6
      ~interval_s:30.0 ~max_flows:500
  in
  let datagrams =
    C.Sflow_codec.datagrams_of_flows rng ~agent:(ip "192.0.2.1") ~source_id:3
      ~sampling_rate:16 ~seq_start:100 flows
  in
  Alcotest.(check bool) "several datagrams" true (List.length datagrams > 3);
  List.iteri
    (fun i d ->
      Alcotest.(check int) "sequence increments" (100 + i)
        d.C.Sflow_codec.datagram_seq;
      Alcotest.(check bool) "chunked" true
        (List.length d.C.Sflow_codec.samples
        <= C.Sflow_codec.max_samples_per_datagram))
    datagrams;
  (* every datagram fits a standard MTU *)
  List.iter
    (fun d ->
      Alcotest.(check bool) "under MTU" true
        (String.length (C.Sflow_codec.encode d) < 1500))
    datagrams

let test_end_to_end_estimation () =
  (* flows -> wire -> aggregate -> rate estimate close to the true rate *)
  let rng = Ef_util.Rng.create 11 in
  let p = prefix "10.0.0.0/24" in
  let true_rate = 4e7 in
  let config = { T.Sflow.sampling_rate = 16; interval_s = 30.0 } in
  let trie = Bgp.Ptrie.add p () Bgp.Ptrie.empty in
  let lpm addr = Option.map fst (Bgp.Ptrie.longest_match addr trie) in
  let estimates = ref [] in
  for _ = 1 to 15 do
    let flows =
      T.Flow.generate rng ~prefix:p ~rate_bps:true_rate ~interval_s:30.0
        ~max_flows:500
    in
    let datagrams =
      C.Sflow_codec.datagrams_of_flows rng ~agent:(ip "192.0.2.1") ~source_id:1
        ~sampling_rate:16 ~seq_start:0 flows
    in
    (* through the wire *)
    let decoded =
      List.map
        (fun d ->
          match C.Sflow_codec.decode (C.Sflow_codec.encode d) with
          | Ok d -> d
          | Error e ->
              Alcotest.failf "decode: %s"
                (Format.asprintf "%a" C.Sflow_codec.pp_error e))
        datagrams
    in
    match C.Sflow_codec.aggregate decoded ~lpm with
    | [ s ] -> estimates := T.Sflow.estimate_rate_bps config s :: !estimates
    | [] -> estimates := 0.0 :: !estimates
    | _ -> Alcotest.fail "unexpected prefixes"
  done;
  let mean =
    List.fold_left ( +. ) 0.0 !estimates /. float_of_int (List.length !estimates)
  in
  let err = Float.abs (mean -. true_rate) /. true_rate in
  if err > 0.1 then Alcotest.failf "estimation error %.3f" err

let test_aggregate_drops_unknown_destinations () =
  let d = datagram ~samples:[ sample "203.0.113.55" ] () in
  let trie = Bgp.Ptrie.add (prefix "10.0.0.0/8") () Bgp.Ptrie.empty in
  let lpm addr = Option.map fst (Bgp.Ptrie.longest_match addr trie) in
  Alcotest.(check int) "nothing aggregated" 0
    (List.length (C.Sflow_codec.aggregate [ d ] ~lpm))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "version pinned" `Quick test_version_pinned;
    Alcotest.test_case "truncated" `Quick test_truncated;
    Alcotest.test_case "ethertype checked" `Quick test_ethertype_checked;
    Alcotest.test_case "chunking" `Quick test_datagrams_of_flows_chunking;
    Alcotest.test_case "end-to-end estimation" `Quick test_end_to_end_estimation;
    Alcotest.test_case "unknown destinations dropped" `Quick
      test_aggregate_drops_unknown_destinations;
  ]
