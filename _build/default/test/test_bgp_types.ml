(* ef_bgp: Asn, Community, As_path, Attrs, Peer, Route *)

module Bgp = Ef_bgp
open Helpers

let test_asn_ranges () =
  Alcotest.(check bool) "private 16-bit" true (Bgp.Asn.is_private 64512);
  Alcotest.(check bool) "private 32-bit" true (Bgp.Asn.is_private 4200000000);
  Alcotest.(check bool) "public" false (Bgp.Asn.is_private 15169);
  Alcotest.(check bool) "reserved 0" true (Bgp.Asn.is_reserved 0);
  Alcotest.(check bool) "reserved 65535" true (Bgp.Asn.is_reserved 65535);
  Alcotest.(check bool) "fits two bytes" true (Bgp.Asn.fits_two_bytes 65535);
  Alcotest.(check bool) "does not fit" false (Bgp.Asn.fits_two_bytes 65536);
  Alcotest.check_raises "negative" (Invalid_argument "Asn.of_int: out of range")
    (fun () -> ignore (Bgp.Asn.of_int (-1)))

let test_community_roundtrip () =
  let c = Bgp.Community.make 65000 911 in
  Alcotest.(check int) "asn" 65000 (Bgp.Community.asn c);
  Alcotest.(check int) "value" 911 (Bgp.Community.value c);
  Alcotest.(check string) "to_string" "65000:911" (Bgp.Community.to_string c);
  Alcotest.(check bool) "of_string" true
    (Bgp.Community.equal c (Bgp.Community.of_string "65000:911"))

let test_community_wire_roundtrip () =
  let c = Bgp.Community.make 0xFFFF 0xFFFF in
  Alcotest.(check bool) "int32 roundtrip" true
    (Bgp.Community.equal c (Bgp.Community.of_int32 (Bgp.Community.to_int32 c)))

let test_community_well_known () =
  Alcotest.(check bool) "no-export" true
    (Bgp.Community.is_well_known Bgp.Community.no_export);
  Alcotest.(check bool) "ordinary" false
    (Bgp.Community.is_well_known (Bgp.Community.make 65000 1))

let test_community_validation () =
  Alcotest.check_raises "asn too big"
    (Invalid_argument "Community.make: asn out of range") (fun () ->
      ignore (Bgp.Community.make 70000 1))

let asn = Bgp.Asn.of_int

let test_as_path_length () =
  let open Bgp.As_path in
  Alcotest.(check int) "empty" 0 (length empty);
  Alcotest.(check int) "seq" 3 (length (of_list [ asn 1; asn 2; asn 3 ]));
  Alcotest.(check int) "set counts one" 2
    (length (of_segments [ Seq [ asn 1 ]; Set [ asn 2; asn 3; asn 4 ] ]))

let test_as_path_prepend () =
  let open Bgp.As_path in
  let p = of_list [ asn 2; asn 3 ] in
  let p = prepend (asn 1) p in
  Alcotest.(check int) "length" 3 (length p);
  Alcotest.(check (option int)) "first" (Some 1)
    (Option.map Bgp.Asn.to_int (first_as p));
  let p3 = prepend_n (asn 9) 3 empty in
  Alcotest.(check int) "prepend_n" 3 (length p3)

let test_as_path_prepend_onto_set () =
  let open Bgp.As_path in
  let p = of_segments [ Set [ asn 5; asn 6 ] ] in
  let p = prepend (asn 1) p in
  Alcotest.(check int) "seq then set" 2 (length p);
  Alcotest.(check (option int)) "first" (Some 1)
    (Option.map Bgp.Asn.to_int (first_as p))

let test_as_path_origin () =
  let open Bgp.As_path in
  Alcotest.(check (option int)) "origin" (Some 3)
    (Option.map Bgp.Asn.to_int (origin_as (of_list [ asn 1; asn 2; asn 3 ])));
  Alcotest.(check (option int)) "empty" None
    (Option.map Bgp.Asn.to_int (origin_as empty))

let test_as_path_loop_detection () =
  let open Bgp.As_path in
  let p = of_segments [ Seq [ asn 1; asn 2 ]; Set [ asn 7 ] ] in
  Alcotest.(check bool) "in seq" true (mem (asn 2) p);
  Alcotest.(check bool) "in set" true (mem (asn 7) p);
  Alcotest.(check bool) "absent" false (mem (asn 99) p)

let test_as_path_normalise () =
  let open Bgp.As_path in
  Alcotest.(check bool) "empty segments dropped" true
    (equal empty (of_segments [ Seq []; Set [] ]))

let test_attrs_communities_sorted_dedup () =
  let c1 = Bgp.Community.make 1 1 and c2 = Bgp.Community.make 1 2 in
  let a = attrs ~communities:[ c2; c1; c2 ] () in
  Alcotest.(check int) "deduped" 2 (List.length a.Bgp.Attrs.communities);
  Alcotest.(check bool) "sorted" true
    (Bgp.Community.equal (List.hd a.Bgp.Attrs.communities) c1)

let test_attrs_add_remove_community () =
  let c = Bgp.Community.make 65000 911 in
  let a = attrs () in
  let a = Bgp.Attrs.add_community c a in
  Alcotest.(check bool) "has" true (Bgp.Attrs.has_community c a);
  let a = Bgp.Attrs.remove_community c a in
  Alcotest.(check bool) "removed" false (Bgp.Attrs.has_community c a)

let test_attrs_effective_local_pref () =
  Alcotest.(check int) "default 100" 100
    (Bgp.Attrs.effective_local_pref (attrs ()));
  Alcotest.(check int) "explicit" 400
    (Bgp.Attrs.effective_local_pref (attrs ~local_pref:(Some 400) ()))

let test_attrs_prepend () =
  let a = Bgp.Attrs.prepend_path (asn 64500) 2 (attrs ~path:[ 1 ] ()) in
  Alcotest.(check int) "length" 3 (Bgp.As_path.length a.Bgp.Attrs.as_path)

let test_route_accessors () =
  let r =
    route ~prefix_str:"10.5.0.0/16" ~kind:Bgp.Peer.Private_peer ~asn:100
      ~peer_id:3 ~local_pref:(Some 400) ~path:[ 100 ] ()
  in
  Alcotest.check prefix_t "prefix" (prefix "10.5.0.0/16") (Bgp.Route.prefix r);
  Alcotest.(check int) "peer id" 3 (Bgp.Route.peer_id r);
  Alcotest.(check bool) "kind" true (Bgp.Route.peer_kind r = Bgp.Peer.Private_peer);
  Alcotest.(check int) "local pref" 400 (Bgp.Route.local_pref r);
  Alcotest.(check int) "path length" 1 (Bgp.Route.as_path_length r);
  Alcotest.(check (option int)) "origin as" (Some 100)
    (Option.map Bgp.Asn.to_int (Bgp.Route.origin_as r))

let test_peer_kind_ranks () =
  let open Bgp.Peer in
  Alcotest.(check bool) "private best" true
    (kind_rank Private_peer < kind_rank Public_peer);
  Alcotest.(check bool) "public over rs" true
    (kind_rank Public_peer < kind_rank Route_server);
  Alcotest.(check bool) "transit last" true
    (kind_rank Route_server < kind_rank Transit)

let suite =
  [
    Alcotest.test_case "asn ranges" `Quick test_asn_ranges;
    Alcotest.test_case "community roundtrip" `Quick test_community_roundtrip;
    Alcotest.test_case "community wire roundtrip" `Quick
      test_community_wire_roundtrip;
    Alcotest.test_case "community well-known" `Quick test_community_well_known;
    Alcotest.test_case "community validation" `Quick test_community_validation;
    Alcotest.test_case "as_path length" `Quick test_as_path_length;
    Alcotest.test_case "as_path prepend" `Quick test_as_path_prepend;
    Alcotest.test_case "as_path prepend onto set" `Quick
      test_as_path_prepend_onto_set;
    Alcotest.test_case "as_path origin" `Quick test_as_path_origin;
    Alcotest.test_case "as_path loop detection" `Quick test_as_path_loop_detection;
    Alcotest.test_case "as_path normalise" `Quick test_as_path_normalise;
    Alcotest.test_case "attrs communities sorted/dedup" `Quick
      test_attrs_communities_sorted_dedup;
    Alcotest.test_case "attrs add/remove community" `Quick
      test_attrs_add_remove_community;
    Alcotest.test_case "attrs effective local pref" `Quick
      test_attrs_effective_local_pref;
    Alcotest.test_case "attrs prepend" `Quick test_attrs_prepend;
    Alcotest.test_case "route accessors" `Quick test_route_accessors;
    Alcotest.test_case "peer kind ranks" `Quick test_peer_kind_ranks;
  ]
