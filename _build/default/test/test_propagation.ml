(* Integration: routes propagating across a topology of full routers.

   A tiny network harness connects several Speakers with in-memory
   links and pumps effects until quiescent. Chains verify export
   (prepending, next-hop rewrite, split horizon, full-table dump on
   session-up); the triangle verifies that AS-path loop suppression
   terminates propagation. *)

module Bgp = Ef_bgp
open Helpers

(* ------------------------------------------------------------------ *)
(* a tiny multi-router network                                         *)
(* ------------------------------------------------------------------ *)

type net = {
  speakers : (string * Bgp.Speaker.t) list;
  (* (speaker, session peer id) <-> (speaker, session peer id) *)
  links : ((string * int) * (string * int)) list;
  queue : (string * Bgp.Speaker.effect_) Queue.t;
  mutable connected : (string * int) list; (* link endpoints already up *)
}

let speaker net name = List.assoc name net.speakers

let far_end net (name, peer_id) =
  let rec go = function
    | [] -> None
    | (a, b) :: rest ->
        if a = (name, peer_id) then Some b
        else if b = (name, peer_id) then Some a
        else go rest
  in
  go net.links

let push net name effects =
  List.iter (fun e -> Queue.push (name, e) net.queue) effects

let pump net =
  while not (Queue.is_empty net.queue) do
    let name, effect_ = Queue.pop net.queue in
    match effect_ with
    | Bgp.Speaker.Write { peer_id; data } -> (
        match far_end net (name, peer_id) with
        | None -> ()
        | Some (other, other_peer) ->
            push net other
              (Bgp.Speaker.receive_bytes (speaker net other) ~peer_id:other_peer
                 data))
    | Bgp.Speaker.Request_connect { peer_id } -> (
        match far_end net (name, peer_id) with
        | None -> ()
        | Some (other, other_peer) ->
            if not (List.mem (name, peer_id) net.connected) then begin
              net.connected <-
                (name, peer_id) :: (other, other_peer) :: net.connected;
              push net name
                (Bgp.Speaker.tcp_connected (speaker net name) ~peer_id);
              push net other
                (Bgp.Speaker.tcp_connected (speaker net other) ~peer_id:other_peer)
            end)
    | Bgp.Speaker.Drop_connection _ | Bgp.Speaker.Set_timer _
    | Bgp.Speaker.Clear_timer _ | Bgp.Speaker.Rib_changed _
    | Bgp.Speaker.Peer_up _ | Bgp.Speaker.Peer_down _ ->
        ()
  done

let mk_speaker asn octet =
  Bgp.Speaker.create ~asn:(Bgp.Asn.of_int asn)
    ~router_id:(Bgp.Ipv4.of_octets 10 0 0 octet)
    ()

let neighbor ~session_id ~asn ~octet =
  Bgp.Peer.make ~id:session_id
    ~name:(Printf.sprintf "as%d" asn)
    ~asn:(Bgp.Asn.of_int asn) ~kind:Bgp.Peer.Transit
    ~router_id:(Bgp.Ipv4.of_octets 10 0 0 octet)
    ~session_addr:(Bgp.Ipv4.of_octets 172 16 0 octet)

(* chain a - b - c: asn 65001, 65002, 65003 *)
let make_chain () =
  let a = mk_speaker 65001 1 and b = mk_speaker 65002 2 and c = mk_speaker 65003 3 in
  (* session ids are local to each speaker: 1 = left neighbor, 2 = right *)
  Bgp.Speaker.add_session a (neighbor ~session_id:2 ~asn:65002 ~octet:2)
    ~policy:Bgp.Policy.accept_all;
  Bgp.Speaker.add_session b (neighbor ~session_id:1 ~asn:65001 ~octet:1)
    ~policy:Bgp.Policy.accept_all;
  Bgp.Speaker.add_session b (neighbor ~session_id:2 ~asn:65003 ~octet:3)
    ~policy:Bgp.Policy.accept_all;
  Bgp.Speaker.add_session c (neighbor ~session_id:1 ~asn:65002 ~octet:2)
    ~policy:Bgp.Policy.accept_all;
  let net =
    {
      speakers = [ ("a", a); ("b", b); ("c", c) ];
      links = [ (("a", 2), ("b", 1)); (("b", 2), ("c", 1)) ];
      queue = Queue.create ();
      connected = [];
    }
  in
  (net, a, b, c)

let establish_all net =
  List.iter
    (fun ((name, peer_id), _) ->
      push net name (Bgp.Speaker.start (speaker net name) ~peer_id))
    net.links;
  (* the passive ends also start (active-active, as in the pair test) *)
  List.iter
    (fun (_, (name, peer_id)) ->
      push net name (Bgp.Speaker.start (speaker net name) ~peer_id))
    net.links;
  pump net

let p0 = prefix "198.51.100.0/24"

let test_chain_propagates_with_prepending () =
  let net, a, _, c = make_chain () in
  establish_all net;
  push net "a" (Bgp.Speaker.originate a p0);
  pump net;
  match Bgp.Rib.best (Bgp.Speaker.rib c) p0 with
  | None -> Alcotest.fail "route did not reach c"
  | Some r ->
      Alcotest.(check (list int)) "path is [b; a]" [ 65002; 65001 ]
        (List.map Bgp.Asn.to_int
           (Bgp.As_path.to_list (Bgp.Route.attrs r).Bgp.Attrs.as_path));
      (* next hop rewritten at each eBGP hop: c sees b's address *)
      Alcotest.check ipv4_t "next hop is b" (ip "10.0.0.2") (Bgp.Route.next_hop r);
      (* non-transitive attributes stripped on export *)
      Alcotest.(check (option int)) "no local pref" None
        (Bgp.Route.attrs r).Bgp.Attrs.local_pref

let test_chain_withdraw_propagates () =
  let net, a, b, c = make_chain () in
  establish_all net;
  push net "a" (Bgp.Speaker.originate a p0);
  pump net;
  Alcotest.(check bool) "c has it" true
    (Option.is_some (Bgp.Rib.best (Bgp.Speaker.rib c) p0));
  (* a's session to b dies: b flushes and tells c *)
  push net "a" (Bgp.Speaker.stop a ~peer_id:2);
  pump net;
  Alcotest.(check bool) "b flushed" true
    (Option.is_none (Bgp.Rib.best (Bgp.Speaker.rib b) p0));
  Alcotest.(check bool) "c flushed transitively" true
    (Option.is_none (Bgp.Rib.best (Bgp.Speaker.rib c) p0))

let test_late_session_gets_full_table () =
  let net, a, _, c = make_chain () in
  (* only the a-b link comes up first; a originates *)
  push net "a" (Bgp.Speaker.start a ~peer_id:2);
  push net "b" (Bgp.Speaker.start (speaker net "b") ~peer_id:1);
  pump net;
  push net "a" (Bgp.Speaker.originate a p0);
  pump net;
  Alcotest.(check bool) "c not yet" true
    (Option.is_none (Bgp.Rib.best (Bgp.Speaker.rib c) p0));
  (* now the b-c link establishes: b's session-up dump must deliver it *)
  push net "b" (Bgp.Speaker.start (speaker net "b") ~peer_id:2);
  push net "c" (Bgp.Speaker.start c ~peer_id:1);
  pump net;
  match Bgp.Rib.best (Bgp.Speaker.rib c) p0 with
  | None -> Alcotest.fail "full-table dump missing"
  | Some r ->
      Alcotest.(check (list int)) "path" [ 65002; 65001 ]
        (List.map Bgp.Asn.to_int
           (Bgp.As_path.to_list (Bgp.Route.attrs r).Bgp.Attrs.as_path))

let test_triangle_loops_suppressed () =
  (* a - b - c - a: the route a originates comes back to a with a's ASN
     in the path; a must drop it, and propagation must terminate *)
  let a = mk_speaker 65001 1 and b = mk_speaker 65002 2 and c = mk_speaker 65003 3 in
  Bgp.Speaker.add_session a (neighbor ~session_id:2 ~asn:65002 ~octet:2)
    ~policy:Bgp.Policy.accept_all;
  Bgp.Speaker.add_session a (neighbor ~session_id:3 ~asn:65003 ~octet:3)
    ~policy:Bgp.Policy.accept_all;
  Bgp.Speaker.add_session b (neighbor ~session_id:1 ~asn:65001 ~octet:1)
    ~policy:Bgp.Policy.accept_all;
  Bgp.Speaker.add_session b (neighbor ~session_id:3 ~asn:65003 ~octet:3)
    ~policy:Bgp.Policy.accept_all;
  Bgp.Speaker.add_session c (neighbor ~session_id:1 ~asn:65001 ~octet:1)
    ~policy:Bgp.Policy.accept_all;
  Bgp.Speaker.add_session c (neighbor ~session_id:2 ~asn:65002 ~octet:2)
    ~policy:Bgp.Policy.accept_all;
  let net =
    {
      speakers = [ ("a", a); ("b", b); ("c", c) ];
      links =
        [ (("a", 2), ("b", 1)); (("b", 3), ("c", 2)); (("c", 1), ("a", 3)) ];
      queue = Queue.create ();
      connected = [];
    }
  in
  establish_all net;
  push net "a" (Bgp.Speaker.originate a p0);
  pump net (* termination of this pump IS the loop-suppression check *);
  (* b and c both know the prefix; a itself never installs a looped copy *)
  Alcotest.(check bool) "b has it" true
    (Option.is_some (Bgp.Rib.best (Bgp.Speaker.rib b) p0));
  Alcotest.(check bool) "c has it" true
    (Option.is_some (Bgp.Rib.best (Bgp.Speaker.rib c) p0));
  Alcotest.(check bool) "a rejects the echo" true
    (Option.is_none (Bgp.Rib.best (Bgp.Speaker.rib a) p0));
  (* and c picked the direct route from a, not the detour via b *)
  match Bgp.Rib.best (Bgp.Speaker.rib c) p0 with
  | Some r -> Alcotest.(check int) "one hop" 1 (Bgp.Route.as_path_length r)
  | None -> assert false

let suite =
  [
    Alcotest.test_case "chain propagates + prepends" `Quick
      test_chain_propagates_with_prepending;
    Alcotest.test_case "chain withdraw propagates" `Quick
      test_chain_withdraw_propagates;
    Alcotest.test_case "late session full table" `Quick
      test_late_session_gets_full_table;
    Alcotest.test_case "triangle loop suppressed" `Quick
      test_triangle_loops_suppressed;
  ]
