test/test_netsim.ml: Alcotest Ef_bgp Ef_netsim Float Helpers List Option String
