test/test_route_server.ml: Alcotest Ef_bgp Helpers List
