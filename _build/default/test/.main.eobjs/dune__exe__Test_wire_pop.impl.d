test/test_wire_pop.ml: Alcotest Ef_bgp Ef_netsim Helpers Lazy List Option
