test/helpers.ml: Alcotest Ef_bgp List Printf String
