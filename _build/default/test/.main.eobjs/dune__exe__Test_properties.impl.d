test/test_properties.ml: Array Edge_fabric Ef_bgp Ef_collector Ef_netsim Float Hashtbl Lazy List Printf QCheck QCheck_alcotest String
