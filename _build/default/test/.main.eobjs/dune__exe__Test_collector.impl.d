test/test_collector.ml: Alcotest Bytes Ef_bgp Ef_collector Ef_netsim Format Helpers List String
