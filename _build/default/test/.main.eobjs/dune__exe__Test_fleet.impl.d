test/test_fleet.ml: Alcotest Ef_netsim Ef_sim Ef_stats List
