test/test_traffic.ml: Alcotest Ef_bgp Ef_netsim Ef_traffic Ef_util Float Helpers Lazy List
