test/test_sflow_codec.ml: Alcotest Bytes Char Ef_bgp Ef_collector Ef_traffic Ef_util Float Format Helpers List Option String
