test/test_altpath.ml: Alcotest Edge_fabric Ef_altpath Ef_bgp Ef_collector Ef_netsim Helpers Lazy List Option Test_core
