test/test_controller.ml: Alcotest Edge_fabric Ef_bgp Ef_collector Ef_netsim Helpers List Test_core
