test/test_bgp_types.ml: Alcotest Ef_bgp Helpers List Option
