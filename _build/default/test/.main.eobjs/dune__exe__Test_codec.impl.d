test/test_codec.ml: Alcotest Buffer Bytes Char Ef_bgp Format Gen Helpers Int32 List QCheck QCheck_alcotest String
