test/test_propagation.ml: Alcotest Ef_bgp Helpers List Option Printf Queue
