test/test_engine.ml: Alcotest Edge_fabric Ef_altpath Ef_bgp Ef_collector Ef_netsim Ef_sim Ef_stats Ef_traffic Float Helpers List Option
