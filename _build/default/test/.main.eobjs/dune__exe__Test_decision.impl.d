test/test_decision.ml: Alcotest Ef_bgp Helpers List Option QCheck QCheck_alcotest
