test/test_experiments.ml: Alcotest Ef_sim Ef_stats Helpers List
