test/test_speaker.ml: Alcotest Ef_bgp Helpers List Option Queue String
