test/test_core.ml: Alcotest Array Edge_fabric Ef_bgp Ef_collector Ef_netsim Ef_util Gen Hashtbl Helpers List Option Printf QCheck QCheck_alcotest
