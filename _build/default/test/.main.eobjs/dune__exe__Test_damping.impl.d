test/test_damping.ml: Alcotest Ef_bgp Helpers
