test/test_mrt.ml: Alcotest Char Ef_bgp Ef_netsim Filename Format Fun Helpers Lazy List String Sys
