test/test_util.ml: Alcotest Array Ef_util Ewma Float Format Fun Helpers Int64 List QCheck QCheck_alcotest Rng Units Zipf
