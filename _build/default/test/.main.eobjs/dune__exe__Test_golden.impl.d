test/test_golden.ml: Alcotest Char Ef_bgp Ef_collector Helpers List Printf String
