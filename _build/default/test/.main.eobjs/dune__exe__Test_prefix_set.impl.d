test/test_prefix_set.ml: Alcotest Edge_fabric Ef_bgp Ef_netsim Fun Helpers List QCheck QCheck_alcotest String Test_core
