test/test_rib.ml: Alcotest Ef_bgp Helpers List Printf
