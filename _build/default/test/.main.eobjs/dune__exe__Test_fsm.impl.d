test/test_fsm.ml: Alcotest Ef_bgp Helpers List QCheck QCheck_alcotest
