test/main.mli:
