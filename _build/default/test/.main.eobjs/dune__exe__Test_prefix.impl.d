test/test_prefix.ml: Alcotest Ef_bgp Gen Helpers Int32 List Option QCheck QCheck_alcotest
