test/test_stats.ml: Alcotest Cdf Ef_stats Float Gen Helpers Histogram List QCheck QCheck_alcotest String Summary Table
