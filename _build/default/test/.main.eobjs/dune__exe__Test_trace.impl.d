test/test_trace.ml: Alcotest Edge_fabric Ef_bgp Ef_collector Ef_netsim Filename Fun Helpers Lazy List Printf Sys
