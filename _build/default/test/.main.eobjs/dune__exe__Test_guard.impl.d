test/test_guard.ml: Alcotest Edge_fabric Ef_bgp Ef_collector Ef_netsim Helpers List Option Test_core
