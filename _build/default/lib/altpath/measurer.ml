module Bgp = Ef_bgp
module Snapshot = Ef_collector.Snapshot
open Ef_util

type config = {
  prefixes_per_cycle : int;
  samples_per_path : int;
  max_levels : int;
  sliver_fraction : float;
}

let default_config =
  {
    prefixes_per_cycle = 200;
    samples_per_path = 8;
    max_levels = 3;
    sliver_fraction = 0.005;
  }

type t = {
  config : config;
  rng : Rng.t;
  store : Path_store.t;
}

let create ?(config = default_config) ~seed () =
  if config.max_levels < 1 || config.max_levels > 3 then
    invalid_arg "Measurer.create: max_levels must be in [1, 3]";
  { config; rng = Rng.create seed; store = Path_store.create () }

let config t = t.config
let store t = t.store

type cycle_report = {
  measured_prefixes : Bgp.Prefix.t list;
  samples_taken : int;
  diverted_bps : float;
}

let measurable_routes t snapshot prefix =
  (* primary + up to max_levels alternates, skipping levels DSCP cannot
     express *)
  let ranked = Snapshot.routes snapshot prefix in
  List.filteri (fun level _ -> level <= t.config.max_levels) ranked

let cycle t snapshot ~latency ~utilization =
  let rated = Snapshot.prefix_rates snapshot in
  let pool = Array.of_list rated in
  let chosen =
    if Array.length pool = 0 then [||]
    else
      Rng.sample_without_replacement t.rng t.config.prefixes_per_cycle pool
  in
  let samples = ref 0 in
  let diverted = ref 0.0 in
  let measured = ref [] in
  Array.iter
    (fun (prefix, rate) ->
      let routes = measurable_routes t snapshot prefix in
      match routes with
      | [] | [ _ ] -> () (* nothing to compare *)
      | _ ->
          measured := prefix :: !measured;
          diverted := !diverted +. (rate *. t.config.sliver_fraction);
          List.iter
            (fun route ->
              let util =
                match Snapshot.iface_of_route snapshot route with
                | None -> 0.0
                | Some iface -> utilization (Ef_netsim.Iface.id iface)
              in
              for _ = 1 to t.config.samples_per_path do
                let rtt =
                  Ef_netsim.Latency.sample_rtt_ms latency t.rng prefix route
                    ~utilization:util
                in
                Path_store.observe t.store ~prefix
                  ~peer_id:(Bgp.Route.peer_id route) ~rtt_ms:rtt;
                incr samples
              done)
            routes)
    chosen;
  {
    measured_prefixes = List.rev !measured;
    samples_taken = !samples;
    diverted_bps = !diverted;
  }

let comparisons t snapshot =
  List.filter_map
    (fun (prefix, _rate) ->
      match Snapshot.routes snapshot prefix with
      | [] | [ _ ] -> None
      | primary :: alts ->
          Path_store.compare_paths t.store ~prefix
            ~primary:(Bgp.Route.peer_id primary)
            ~alternates:(List.map Bgp.Route.peer_id alts))
    (Snapshot.prefix_rates snapshot)
