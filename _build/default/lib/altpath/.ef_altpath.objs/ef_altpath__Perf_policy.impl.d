lib/altpath/perf_policy.ml: Edge_fabric Ef_bgp Ef_collector Ef_netsim List Path_store
