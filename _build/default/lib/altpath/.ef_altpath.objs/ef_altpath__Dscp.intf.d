lib/altpath/dscp.mli: Format
