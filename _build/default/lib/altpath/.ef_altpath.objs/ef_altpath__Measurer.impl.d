lib/altpath/measurer.ml: Array Ef_bgp Ef_collector Ef_netsim Ef_util List Path_store Rng
