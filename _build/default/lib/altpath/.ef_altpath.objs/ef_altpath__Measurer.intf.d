lib/altpath/measurer.mli: Ef_bgp Ef_collector Ef_netsim Path_store
