lib/altpath/dscp.ml: Format Int Option
