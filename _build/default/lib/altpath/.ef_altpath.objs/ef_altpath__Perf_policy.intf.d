lib/altpath/perf_policy.mli: Edge_fabric Ef_bgp Ef_collector Path_store
