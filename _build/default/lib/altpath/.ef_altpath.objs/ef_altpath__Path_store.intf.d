lib/altpath/path_store.mli: Ef_bgp
