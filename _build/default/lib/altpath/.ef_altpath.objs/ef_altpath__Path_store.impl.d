lib/altpath/path_store.ml: Array Ef_bgp Hashtbl List Option Queue
