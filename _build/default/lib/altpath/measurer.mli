(** The alternate-path measurement scheduler.

    Each cycle it picks a random subset of rated prefixes, and for each
    one routes a measurement sliver over the primary and up to three
    alternate routes (the DSCP classes), collecting RTT samples into a
    {!Path_store}. The sliver is small enough (default 0.5 %) that it
    never meaningfully loads the alternates — matching the paper's
    deployment, where measurement traffic is a rounding error. *)

type config = {
  prefixes_per_cycle : int;   (** random prefixes measured each cycle *)
  samples_per_path : int;     (** RTT samples collected per path *)
  max_levels : int;           (** alternates measured, <= 3 *)
  sliver_fraction : float;    (** fraction of the prefix's traffic diverted *)
}

val default_config : config
(** 200 prefixes/cycle, 8 samples/path, 3 alternates, 0.5 %. *)

type t

val create : ?config:config -> seed:int -> unit -> t
val config : t -> config
val store : t -> Path_store.t

type cycle_report = {
  measured_prefixes : Ef_bgp.Prefix.t list;
  samples_taken : int;
  diverted_bps : float;   (** total measurement sliver this cycle *)
}

val cycle :
  t ->
  Ef_collector.Snapshot.t ->
  latency:Ef_netsim.Latency.t ->
  utilization:(int -> float) ->
  cycle_report
(** [utilization] maps an interface id to its current utilization, so
    congestion on a path shows up in its measured RTT — exactly how the
    paper detects that a detour or an overloaded path hurts. *)

val comparisons :
  t -> Ef_collector.Snapshot.t -> Path_store.comparison list
(** All prefixes whose primary and at least one alternate have samples,
    compared (Figure-10 material). *)
