module Bgp = Ef_bgp

type path_key = {
  key_prefix : Bgp.Prefix.t;
  key_peer : int;
}

type comparison = {
  cmp_prefix : Bgp.Prefix.t;
  primary_peer : int;
  primary_median_ms : float;
  best_alt_peer : int;
  best_alt_median_ms : float;
  delta_ms : float;
}

module Ktbl = Hashtbl.Make (struct
  type t = path_key

  let equal a b = a.key_peer = b.key_peer && Bgp.Prefix.equal a.key_prefix b.key_prefix
  let hash k = (Bgp.Prefix.hash k.key_prefix * 31) + k.key_peer
end)

type t = {
  window : int;
  samples : float Queue.t Ktbl.t;
}

let create ?(window = 64) () =
  if window < 1 then invalid_arg "Path_store.create: window must be >= 1";
  { window; samples = Ktbl.create 256 }

let observe t ~prefix ~peer_id ~rtt_ms =
  let key = { key_prefix = prefix; key_peer = peer_id } in
  let q =
    match Ktbl.find_opt t.samples key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Ktbl.replace t.samples key q;
        q
  in
  Queue.push rtt_ms q;
  if Queue.length q > t.window then ignore (Queue.pop q)

let sample_count t ~prefix ~peer_id =
  match Ktbl.find_opt t.samples { key_prefix = prefix; key_peer = peer_id } with
  | None -> 0
  | Some q -> Queue.length q

let median_rtt_ms t ~prefix ~peer_id =
  match Ktbl.find_opt t.samples { key_prefix = prefix; key_peer = peer_id } with
  | None -> None
  | Some q when Queue.is_empty q -> None
  | Some q ->
      let arr = Array.of_seq (Queue.to_seq q) in
      Array.sort compare arr;
      let n = Array.length arr in
      Some
        (if n mod 2 = 1 then arr.(n / 2)
         else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0)

let compare_paths t ~prefix ~primary ~alternates =
  match median_rtt_ms t ~prefix ~peer_id:primary with
  | None -> None
  | Some primary_median ->
      let alts =
        List.filter_map
          (fun peer ->
            Option.map
              (fun m -> (peer, m))
              (median_rtt_ms t ~prefix ~peer_id:peer))
          alternates
      in
      let best =
        List.fold_left
          (fun acc (peer, m) ->
            match acc with
            | None -> Some (peer, m)
            | Some (_, best_m) when m < best_m -> Some (peer, m)
            | Some _ -> acc)
          None alts
      in
      Option.map
        (fun (best_alt_peer, best_alt_median_ms) ->
          {
            cmp_prefix = prefix;
            primary_peer = primary;
            primary_median_ms = primary_median;
            best_alt_peer;
            best_alt_median_ms;
            delta_ms = best_alt_median_ms -. primary_median;
          })
        best

let paths_measured t = Ktbl.length t.samples

let clear_prefix t prefix =
  let keys =
    Ktbl.fold
      (fun k _ acc ->
        if Bgp.Prefix.equal k.key_prefix prefix then k :: acc else acc)
      t.samples []
  in
  List.iter (Ktbl.remove t.samples) keys
