(** DSCP marking for alternate-path measurement.

    Production Edge Fabric steers a sliver of flows onto alternate routes
    by having front-end servers set a DSCP value and the peering routers
    apply per-DSCP policy routing. Four code points are reserved: 0 keeps
    the BGP/controller decision, and three measurement classes pin a flow
    to the 2nd/3rd/4th-preference route. *)

type t = private int

val default : t
(** 0 — follow normal routing. *)

val alt1 : t
val alt2 : t
val alt3 : t

val of_preference_level : int -> t option
(** [of_preference_level 1] is [Some alt1] (the 2nd-choice route), …;
    level 0 maps to [Some default]; levels above 3 are unmeasurable
    ([None]). *)

val to_preference_level : t -> int option
val of_int : int -> t option
val to_int : t -> int
val all_alternates : t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
