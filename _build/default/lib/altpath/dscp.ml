type t = int

(* AF31/AF32/AF33 class selectors, as production systems reuse existing
   forwarding classes for measurement *)
let default = 0
let alt1 = 26
let alt2 = 28
let alt3 = 30

let of_preference_level = function
  | 0 -> Some default
  | 1 -> Some alt1
  | 2 -> Some alt2
  | 3 -> Some alt3
  | _ -> None

let to_preference_level t =
  if t = default then Some 0
  else if t = alt1 then Some 1
  else if t = alt2 then Some 2
  else if t = alt3 then Some 3
  else None

let of_int i = if Option.is_some (to_preference_level i) then Some i else None
let to_int t = t
let all_alternates = [ alt1; alt2; alt3 ]
let equal = Int.equal
let pp fmt t = Format.fprintf fmt "dscp%d" t
