(** Rolling per-(prefix, peer) RTT statistics.

    The measurement pipeline produces RTT samples for a prefix over
    several candidate routes; this store keeps a bounded window per path
    and answers the question the paper's Figure-10 analysis asks: how
    does each alternate's median compare with the primary's? *)

type path_key = {
  key_prefix : Ef_bgp.Prefix.t;
  key_peer : int;   (** peer id identifying the egress route *)
}

type comparison = {
  cmp_prefix : Ef_bgp.Prefix.t;
  primary_peer : int;
  primary_median_ms : float;
  best_alt_peer : int;
  best_alt_median_ms : float;
  delta_ms : float;  (** alt − primary: negative = alternate is faster *)
}

type t

val create : ?window:int -> unit -> t
(** [window] samples retained per path (default 64, FIFO eviction). *)

val observe : t -> prefix:Ef_bgp.Prefix.t -> peer_id:int -> rtt_ms:float -> unit
val sample_count : t -> prefix:Ef_bgp.Prefix.t -> peer_id:int -> int
val median_rtt_ms : t -> prefix:Ef_bgp.Prefix.t -> peer_id:int -> float option

val compare_paths :
  t -> prefix:Ef_bgp.Prefix.t -> primary:int -> alternates:int list ->
  comparison option
(** [None] until both the primary and at least one alternate have
    samples. The best alternate is the lowest-median one. *)

val paths_measured : t -> int
val clear_prefix : t -> Ef_bgp.Prefix.t -> unit
