(** The time-stepped simulation engine.

    Advances a PoP through a simulated day in controller-cycle steps. Each
    step: synthesize demand → (optionally) sample it through the sFlow
    pipeline → assemble the controller snapshot → run the controller →
    place the {e true} demand according to the enforced overrides → record
    utilizations, drops, RTTs and churn into {!Metrics}.

    The controller only ever sees estimated rates; ground truth is used
    exclusively for the recorded outcomes — the same separation the real
    deployment has between its feeds and reality. *)

type peer_event = {
  event_peer_id : int;
  down_at_s : int;
  up_at_s : int;   (** must be > [down_at_s]; the session re-announces its
                       full table when it returns *)
}
(** A scheduled neighbor-session outage (failure injection): at
    [down_at_s] the peer's routes are flushed exactly as a session loss
    does; at [up_at_s] the session returns and re-announces. Overrides
    targeting the dead peer become stale and fall back safely — the
    machinery this exists to exercise. *)

type config = {
  cycle_s : int;               (** controller period (paper: 30 s) *)
  duration_s : int;
  start_s : int;               (** simulated time of day at the first cycle *)
  controller_enabled : bool;
  controller_config : Edge_fabric.Config.t;
  use_sampling : bool;         (** false = controller sees true rates *)
  sflow : Ef_traffic.Sflow.config;
  measure_altpaths : bool;
  measurer_config : Ef_altpath.Measurer.config;
  perf_aware : bool;
      (** use alternate-path measurements to steer prefixes to faster
          routes (the paper's §7 extension); requires
          [measure_altpaths]. Capacity overrides always win conflicts. *)
  perf_config : Ef_altpath.Perf_policy.config;
  seed : int;
  events : Ef_traffic.Demand.event list;
  peer_events : peer_event list;
}

val default_config : config
(** One simulated day at 30 s cycles, controller on, sampling on,
    alternate-path measurement off. *)

type t

val create : ?config:config -> Ef_netsim.Scenario.t -> t
val config : t -> config
val world : t -> Ef_netsim.Topo_gen.world
val metrics : t -> Metrics.t
val demand : t -> Ef_traffic.Demand.t
val latency : t -> Ef_netsim.Latency.t
val measurer : t -> Ef_altpath.Measurer.t option
val controller : t -> Edge_fabric.Controller.t option
val now_s : t -> int

val step : t -> Metrics.cycle_row
(** Run one cycle and advance time. *)

val run : t -> Metrics.t
(** Step until [duration_s] is exhausted; returns the metrics (also
    available via {!metrics}). *)

val true_rates : t -> time_s:int -> (Ef_bgp.Prefix.t * float) list
(** Ground-truth demand at an instant (nonzero prefixes only). *)

val snapshot_now : t -> Ef_collector.Snapshot.t
(** The controller-view snapshot for the current time (estimated rates if
    sampling is on). *)

type placement_state = {
  actual : Edge_fabric.Projection.t;     (** true demand, enforced overrides *)
  preferred : Edge_fabric.Projection.t;  (** true demand, BGP-only *)
  active_overrides : Edge_fabric.Override.t list;
}

val last_state : t -> placement_state option
(** The ground-truth placements of the most recent {!step} — what the
    per-prefix experiment drivers (detour RTT impact, E9) dissect. *)
