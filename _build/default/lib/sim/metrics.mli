(** Simulation metrics: one row per controller cycle, plus event logs.

    Everything the experiment drivers need to regenerate the paper's
    figures is recorded here — actual and would-be-BGP-only interface
    utilizations, detour volumes, override churn events with lifetimes,
    and traffic-weighted RTTs. *)

type iface_util = {
  u_iface_id : int;
  capacity_bps : float;
  actual_bps : float;      (** with the controller's placement *)
  preferred_bps : float;   (** BGP-only placement of the same demand *)
}

type cycle_row = {
  row_time_s : int;
  offered_bps : float;
  detoured_bps : float;
  overrides_active : int;
  overrides_added : int;
  overrides_removed : int;
  ifaces : iface_util list;
  dropped_bps : float;           (** demand above capacity, actual placement *)
  dropped_preferred_bps : float; (** same, had BGP alone decided *)
  weighted_rtt_ms : float;       (** traffic-weighted RTT, actual placement *)
  weighted_rtt_preferred_ms : float;
  residual_overloads : int;      (** interfaces the allocator could not relieve *)
  detour_levels : (int * float) list;
      (** (preference level of detour target, bps steered there) *)
  perf_overrides_active : int;
      (** performance-motivated overrides enforced this cycle (§7) *)
}

type removal = { removed_prefix : Ef_bgp.Prefix.t; lifetime_s : int }

type t

val create : unit -> t
val record : t -> cycle_row -> unit
val record_removals : t -> removal list -> unit

val rows : t -> cycle_row list
(** Chronological. *)

val removals : t -> removal list
val cycle_count : t -> int

val peak_utilization : t -> [ `Actual | `Preferred ] -> (int * float) list
(** Per interface id: the day's maximum utilization under the chosen
    placement. *)

val overloaded_iface_fraction : t -> [ `Actual | `Preferred ] -> threshold:float -> float
(** Fraction of interfaces whose peak exceeds [threshold]. *)

val total_dropped : t -> [ `Actual | `Preferred ] -> float
(** Sum over cycles of demand that exceeded capacity (bps·cycles). *)

val detour_fraction_series : t -> (int * float) list
(** (time, detoured/offered) per cycle. *)

val mean_detour_fraction : t -> float

val detour_level_shares : t -> (int * float) list
(** Across the run: share of detoured volume landing on each preference
    level (1 = 2nd choice, …). Sums to 1 when any detours happened. *)

val lifetime_cdf : t -> Ef_stats.Cdf.t option
(** CDF of override lifetimes (None if nothing was ever removed). *)
