type iface_util = {
  u_iface_id : int;
  capacity_bps : float;
  actual_bps : float;
  preferred_bps : float;
}

type cycle_row = {
  row_time_s : int;
  offered_bps : float;
  detoured_bps : float;
  overrides_active : int;
  overrides_added : int;
  overrides_removed : int;
  ifaces : iface_util list;
  dropped_bps : float;
  dropped_preferred_bps : float;
  weighted_rtt_ms : float;
  weighted_rtt_preferred_ms : float;
  residual_overloads : int;
  detour_levels : (int * float) list;
  perf_overrides_active : int;
}

type removal = { removed_prefix : Ef_bgp.Prefix.t; lifetime_s : int }

type t = {
  mutable rows : cycle_row list; (* reversed *)
  mutable removals : removal list;
}

let create () = { rows = []; removals = [] }
let record t row = t.rows <- row :: t.rows
let record_removals t rs = t.removals <- rs @ t.removals
let rows t = List.rev t.rows
let removals t = List.rev t.removals
let cycle_count t = List.length t.rows

let pick_bps mode u =
  match mode with
  | `Actual -> u.actual_bps
  | `Preferred -> u.preferred_bps

let peak_utilization t mode =
  let peaks = Hashtbl.create 32 in
  List.iter
    (fun row ->
      List.iter
        (fun u ->
          let util = pick_bps mode u /. u.capacity_bps in
          let prev = Option.value (Hashtbl.find_opt peaks u.u_iface_id) ~default:0.0 in
          if util > prev then Hashtbl.replace peaks u.u_iface_id util)
        row.ifaces)
    t.rows;
  Hashtbl.fold (fun id u acc -> (id, u) :: acc) peaks []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let overloaded_iface_fraction t mode ~threshold =
  match peak_utilization t mode with
  | [] -> 0.0
  | peaks ->
      let over = List.length (List.filter (fun (_, u) -> u > threshold) peaks) in
      float_of_int over /. float_of_int (List.length peaks)

let total_dropped t mode =
  List.fold_left
    (fun acc row ->
      acc
      +.
      match mode with
      | `Actual -> row.dropped_bps
      | `Preferred -> row.dropped_preferred_bps)
    0.0 t.rows

let detour_fraction_series t =
  List.map
    (fun row ->
      ( row.row_time_s,
        if row.offered_bps <= 0.0 then 0.0 else row.detoured_bps /. row.offered_bps ))
    (rows t)

let mean_detour_fraction t =
  match detour_fraction_series t with
  | [] -> 0.0
  | series ->
      List.fold_left (fun acc (_, f) -> acc +. f) 0.0 series
      /. float_of_int (List.length series)

let detour_level_shares t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun row ->
      List.iter
        (fun (level, bps) ->
          let prev = Option.value (Hashtbl.find_opt tbl level) ~default:0.0 in
          Hashtbl.replace tbl level (prev +. bps))
        row.detour_levels)
    t.rows;
  let total = Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0 in
  if total <= 0.0 then []
  else
    Hashtbl.fold (fun level v acc -> (level, v /. total) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let lifetime_cdf t =
  match t.removals with
  | [] -> None
  | rs -> Some (Ef_stats.Cdf.of_samples (List.map (fun r -> float_of_int r.lifetime_s) rs))
