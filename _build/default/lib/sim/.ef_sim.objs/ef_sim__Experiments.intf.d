lib/sim/experiments.mli: Ef_stats
