lib/sim/metrics.ml: Ef_bgp Ef_stats Hashtbl Int List Option
