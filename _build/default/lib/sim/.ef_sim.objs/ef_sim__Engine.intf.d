lib/sim/engine.mli: Edge_fabric Ef_altpath Ef_bgp Ef_collector Ef_netsim Ef_traffic Metrics
