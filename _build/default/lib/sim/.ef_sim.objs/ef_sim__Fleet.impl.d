lib/sim/fleet.ml: Ef_netsim Ef_stats Ef_util Engine Float Format List Metrics
