lib/sim/experiments.ml: Array Edge_fabric Ef_altpath Ef_bgp Ef_collector Ef_netsim Ef_stats Ef_util Engine Float Format Hashtbl List Metrics Option Printf
