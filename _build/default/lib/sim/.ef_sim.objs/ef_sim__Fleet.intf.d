lib/sim/fleet.mli: Ef_netsim Ef_stats Engine Metrics
