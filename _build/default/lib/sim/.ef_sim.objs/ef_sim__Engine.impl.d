lib/sim/engine.ml: Edge_fabric Ef_altpath Ef_bgp Ef_collector Ef_netsim Ef_traffic Ef_util Float Hashtbl Int List Metrics Option Rng Units
