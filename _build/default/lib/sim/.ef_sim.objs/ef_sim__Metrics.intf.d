lib/sim/metrics.mli: Ef_bgp Ef_stats
