lib/collector/snapshot.ml: Ef_bgp Ef_netsim List Option
