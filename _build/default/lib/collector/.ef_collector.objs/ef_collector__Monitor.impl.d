lib/collector/monitor.ml: Bmp Ef_bgp Ef_netsim List
