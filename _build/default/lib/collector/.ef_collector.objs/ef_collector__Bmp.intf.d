lib/collector/bmp.mli: Ef_bgp Format
