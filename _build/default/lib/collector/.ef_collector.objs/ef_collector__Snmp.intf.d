lib/collector/snmp.mli: Ef_netsim
