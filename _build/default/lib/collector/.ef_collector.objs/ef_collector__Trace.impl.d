lib/collector/trace.ml: Buffer Ef_bgp Ef_netsim Fun Hashtbl In_channel List Option Printf Snapshot String
