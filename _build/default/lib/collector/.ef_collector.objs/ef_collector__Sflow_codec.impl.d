lib/collector/sflow_codec.ml: Buffer Char Ef_bgp Ef_traffic Ef_util Format Hashtbl Int32 List Option String
