lib/collector/monitor.mli: Bmp Ef_bgp Ef_netsim
