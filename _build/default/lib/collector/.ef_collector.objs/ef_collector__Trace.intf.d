lib/collector/trace.mli: Snapshot
