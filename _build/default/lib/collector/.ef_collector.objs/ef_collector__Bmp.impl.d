lib/collector/bmp.ml: Buffer Char Ef_bgp Format Int32 List Option String
