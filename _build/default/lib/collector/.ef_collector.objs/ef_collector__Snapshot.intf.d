lib/collector/snapshot.mli: Ef_bgp Ef_netsim
