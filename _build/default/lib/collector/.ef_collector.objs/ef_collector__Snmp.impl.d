lib/collector/snmp.ml: Ef_netsim Hashtbl Int List Printf
