lib/collector/sflow_codec.mli: Ef_bgp Ef_traffic Ef_util Format
