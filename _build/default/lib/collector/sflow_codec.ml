module Bgp = Ef_bgp

type sampled_packet = {
  dst : Bgp.Ipv4.t;
  frame_length : int;
}

type flow_sample = {
  sample_seq : int;
  source_id : int;
  sampling_rate : int;
  sample_pool : int;
  drops : int;
  packet : sampled_packet;
}

type datagram = {
  agent : Bgp.Ipv4.t;
  sub_agent : int;
  datagram_seq : int;
  uptime_ms : int;
  samples : flow_sample list;
}

type error =
  | Truncated
  | Bad_version of int
  | Malformed of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated"
  | Bad_version v -> Format.fprintf fmt "bad sFlow version %d" v
  | Malformed s -> Format.fprintf fmt "malformed: %s" s

let max_samples_per_datagram = 10

(* --- encoding ------------------------------------------------------- *)

let add_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let add_ip buf ip = add_u32 buf (Int32.to_int (Bgp.Ipv4.to_int32 ip) land 0xFFFFFFFF)

(* a minimal Ethernet + IPv4 header whose only live field is the
   destination address; 34 bytes, padded to the 4-byte XDR boundary *)
let sampled_header packet =
  let buf = Buffer.create 36 in
  (* ethernet: dst mac, src mac, ethertype 0x0800 *)
  Buffer.add_string buf "\x02\x00\x00\x00\x00\x01";
  Buffer.add_string buf "\x02\x00\x00\x00\x00\x02";
  add_u16 buf 0x0800;
  (* ipv4: version/ihl, tos, total length, id, flags, ttl, proto(6), csum *)
  Buffer.add_char buf '\x45';
  Buffer.add_char buf '\x00';
  add_u16 buf (min 0xFFFF (max 20 (packet.frame_length - 14)));
  add_u16 buf 0 (* id *);
  add_u16 buf 0x4000 (* don't fragment *);
  Buffer.add_char buf '\x40' (* ttl *);
  Buffer.add_char buf '\x06' (* tcp *);
  add_u16 buf 0 (* checksum: not validated by collectors for sampling *);
  add_ip buf (Bgp.Ipv4.of_octets 10 0 0 1) (* src: the PoP *);
  add_ip buf packet.dst;
  Buffer.add_string buf "\x00\x00" (* pad to 4-byte boundary *);
  Buffer.contents buf

let encode_flow_sample fs =
  let header = sampled_header fs.packet in
  let record = Buffer.create 64 in
  (* raw packet header record: type 1 *)
  add_u32 record 1;
  add_u32 record (16 + String.length header) (* record length *);
  add_u32 record 1 (* protocol: ethernet *);
  add_u32 record fs.packet.frame_length;
  add_u32 record 4 (* stripped (fcs) *);
  add_u32 record (String.length header);
  Buffer.add_string record header;
  let body = Buffer.create 128 in
  add_u32 body fs.sample_seq;
  add_u32 body fs.source_id (* source id: type 0 + ifIndex packed *);
  add_u32 body fs.sampling_rate;
  add_u32 body fs.sample_pool;
  add_u32 body fs.drops;
  add_u32 body fs.source_id (* input ifIndex *);
  add_u32 body 0 (* output ifIndex: unknown *);
  add_u32 body 1 (* one record *);
  Buffer.add_buffer body record;
  let out = Buffer.create 160 in
  add_u32 out 1 (* sample type: flow sample *);
  add_u32 out (Buffer.length body);
  Buffer.add_buffer out body;
  Buffer.contents out

let encode d =
  let buf = Buffer.create 512 in
  add_u32 buf 5 (* version *);
  add_u32 buf 1 (* agent address type: IPv4 *);
  add_ip buf d.agent;
  add_u32 buf d.sub_agent;
  add_u32 buf d.datagram_seq;
  add_u32 buf d.uptime_ms;
  add_u32 buf (List.length d.samples);
  List.iter (fun fs -> Buffer.add_string buf (encode_flow_sample fs)) d.samples;
  Buffer.contents buf

(* --- decoding ------------------------------------------------------- *)

exception Fail of error

type reader = { buf : string; mutable pos : int; limit : int }

let need r n = if r.pos + n > r.limit then raise (Fail Truncated)

let u32 r =
  need r 4;
  let b i = Char.code r.buf.[r.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  v

let skip r n = need r n; r.pos <- r.pos + n

let sub_reader r n =
  need r n;
  let child = { buf = r.buf; pos = r.pos; limit = r.pos + n } in
  r.pos <- r.pos + n;
  child

let decode_raw_packet_record r =
  let _protocol = u32 r in
  let frame_length = u32 r in
  let _stripped = u32 r in
  let header_len = u32 r in
  need r header_len;
  if header_len < 34 then raise (Fail (Malformed "sampled header too short"));
  (* ethertype at offset 12 must be IPv4 *)
  let at i = Char.code r.buf.[r.pos + i] in
  if at 12 <> 0x08 || at 13 <> 0x00 then
    raise (Fail (Malformed "not an IPv4 frame"));
  let dst =
    Bgp.Ipv4.of_octets (at 30) (at 31) (at 32) (at 33)
  in
  skip r header_len;
  { dst; frame_length }

let decode_flow_sample r =
  let sample_seq = u32 r in
  let source_id = u32 r in
  let sampling_rate = u32 r in
  let sample_pool = u32 r in
  let drops = u32 r in
  let _input = u32 r in
  let _output = u32 r in
  let n_records = u32 r in
  let packet = ref None in
  for _ = 1 to n_records do
    let record_type = u32 r in
    let record_len = u32 r in
    let body = sub_reader r record_len in
    if record_type = 1 then packet := Some (decode_raw_packet_record body)
    (* other record types (extended switch/router data) are skipped *)
  done;
  match !packet with
  | None -> raise (Fail (Malformed "flow sample without raw packet record"))
  | Some packet -> { sample_seq; source_id; sampling_rate; sample_pool; drops; packet }

let decode buf =
  try
    let r = { buf; pos = 0; limit = String.length buf } in
    let version = u32 r in
    if version <> 5 then raise (Fail (Bad_version version));
    let addr_type = u32 r in
    if addr_type <> 1 then raise (Fail (Malformed "non-IPv4 agent address"));
    let agent = Bgp.Ipv4.of_int32 (Int32.of_int (u32 r)) in
    let sub_agent = u32 r in
    let datagram_seq = u32 r in
    let uptime_ms = u32 r in
    let n = u32 r in
    let samples = ref [] in
    for _ = 1 to n do
      let sample_type = u32 r in
      let sample_len = u32 r in
      let body = sub_reader r sample_len in
      if sample_type = 1 then samples := decode_flow_sample body :: !samples
      (* counter samples etc. are skipped *)
    done;
    Ok { agent; sub_agent; datagram_seq; uptime_ms; samples = List.rev !samples }
  with Fail e -> Error e

(* --- the agent and collector ends ------------------------------------ *)

let datagrams_of_flows rng ~agent ~source_id ~sampling_rate ~seq_start flows =
  let p = 1.0 /. float_of_int sampling_rate in
  let sample_seq = ref 0 in
  let pool = ref 0 in
  let hits = ref [] in
  List.iter
    (fun (f : Ef_traffic.Flow.t) ->
      let avg = Ef_traffic.Flow.avg_packet_bytes in
      let npkts = f.Ef_traffic.Flow.packets in
      (* exact per-packet draw for small flows, Poisson approximation of
         the binomial for big ones (same trick the in-process sampler
         uses) — keeps huge flows O(hits), not O(packets) *)
      let hit_count =
        if npkts <= 256 then begin
          let c = ref 0 in
          for _ = 1 to npkts do
            if Ef_util.Rng.chance rng p then incr c
          done;
          !c
        end
        else Ef_util.Rng.poisson rng ~lambda:(float_of_int npkts *. p)
      in
      for _ = 1 to hit_count do
        incr sample_seq;
        pool := !pool + sampling_rate;
        hits :=
          {
            sample_seq = !sample_seq;
            source_id;
            sampling_rate;
            sample_pool = !pool;
            drops = 0;
            packet = { dst = f.Ef_traffic.Flow.client; frame_length = avg + 14 };
          }
          :: !hits
      done;
      pool := !pool + max 0 (npkts - (hit_count * sampling_rate)))
    flows;
  let hits = List.rev !hits in
  (* single pass: fill batches of max_samples_per_datagram *)
  let flush seq batch acc =
    if batch = [] then acc
    else
      {
        agent;
        sub_agent = 0;
        datagram_seq = seq;
        uptime_ms = seq * 1000;
        samples = List.rev batch;
      }
      :: acc
  in
  let rec chunk seq batch n acc = function
    | [] -> List.rev (flush seq batch acc)
    | hit :: rest ->
        if n >= max_samples_per_datagram then
          chunk (seq + 1) [ hit ] 1 (flush seq batch acc) rest
        else chunk seq (hit :: batch) (n + 1) acc rest
  in
  chunk seq_start [] 0 [] hits

let aggregate datagrams ~lpm =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun d ->
      List.iter
        (fun fs ->
          match lpm fs.packet.dst with
          | None -> ()
          | Some prefix ->
              let prev = Option.value (Hashtbl.find_opt tbl prefix) ~default:0 in
              Hashtbl.replace tbl prefix (prev + 1))
        d.samples)
    datagrams;
  Hashtbl.fold
    (fun prefix hits acc ->
      { Ef_traffic.Sflow.sample_prefix = prefix; sampled_packets = hits } :: acc)
    tbl []
  |> List.sort (fun a b ->
         Bgp.Prefix.compare a.Ef_traffic.Sflow.sample_prefix
           b.Ef_traffic.Sflow.sample_prefix)
