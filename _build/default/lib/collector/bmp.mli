(** BGP Monitoring Protocol (RFC 7854), the subset Edge Fabric uses.

    The controller learns every peering router's Adj-RIB-Ins through BMP:
    Peer Up messages announce sessions, Route Monitoring messages carry
    each received UPDATE verbatim. This module provides a wire codec for
    those message types (plus Initiation/Peer Down/Termination) and is
    exercised end-to-end: PR RIB → BMP bytes → {!Monitor} → identical
    candidate routes.

    One liberty taken: the per-peer header's Peer Distinguisher (an opaque
    8-byte field for non-global instances) carries the simulator's dense
    peer id, which lets the monitor attach routes to the right neighbor
    without guessing from addresses. *)

type peer_header = {
  peer_id : int;               (** carried in the distinguisher field *)
  peer_addr : Ef_bgp.Ipv4.t;
  peer_asn : Ef_bgp.Asn.t;
  peer_bgp_id : Ef_bgp.Ipv4.t;
  timestamp_s : int;
}

type msg =
  | Initiation of { sys_name : string; sys_descr : string }
  | Termination of { reason : int }
  | Peer_up of {
      header : peer_header;
      local_addr : Ef_bgp.Ipv4.t;
      local_port : int;
      remote_port : int;
    }
  | Peer_down of { header : peer_header; reason : int }
  | Route_monitoring of { header : peer_header; update : Ef_bgp.Msg.update }
  | Stats_report of { header : peer_header; routes_monitored : int }

val pp : Format.formatter -> msg -> unit
val equal : msg -> msg -> bool

type error =
  | Truncated
  | Bad_version of int
  | Unknown_bmp_type of int
  | Bad_pdu of string

val pp_error : Format.formatter -> error -> unit

val encode : msg -> string
val decode : ?pos:int -> string -> (msg * int, error) result
(** As {!Ef_bgp.Codec.decode}: message plus next position; [Truncated]
    means feed more bytes. *)

val decode_all : string -> (msg list, error) result
(** Decode a complete buffer of concatenated messages. *)
