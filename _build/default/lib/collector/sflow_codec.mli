(** sFlow v5 datagrams: the traffic feed's wire format.

    The routers' sampled packets reach the collector as sFlow datagrams;
    this codec covers the subset that per-prefix egress accounting needs:
    the v5 datagram header, flow samples, and the raw-packet-header
    record (from whose embedded Ethernet+IPv4 header the collector reads
    the destination address). Matching the real protocol layout means a
    real sFlow decoder would accept these bytes for the fields modelled.

    The path is exercised end-to-end in tests: flow records → sampled
    packets → datagram bytes → {!decode} → {!aggregate} (longest-prefix
    match on destinations) → the same per-prefix counts the in-process
    sampler produces. *)

type sampled_packet = {
  dst : Ef_bgp.Ipv4.t;     (** destination of the sampled frame *)
  frame_length : int;       (** original frame length in bytes *)
}

type flow_sample = {
  sample_seq : int;
  source_id : int;          (** ifIndex of the sampling interface *)
  sampling_rate : int;      (** 1-in-N *)
  sample_pool : int;        (** packets seen since start *)
  drops : int;
  packet : sampled_packet;
}

type datagram = {
  agent : Ef_bgp.Ipv4.t;
  sub_agent : int;
  datagram_seq : int;
  uptime_ms : int;
  samples : flow_sample list;
}

type error =
  | Truncated
  | Bad_version of int
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val encode : datagram -> string
val decode : string -> (datagram, error) result

val max_samples_per_datagram : int
(** 10 — keeps encoded datagrams under a typical MTU. *)

val datagrams_of_flows :
  Ef_util.Rng.t ->
  agent:Ef_bgp.Ipv4.t ->
  source_id:int ->
  sampling_rate:int ->
  seq_start:int ->
  Ef_traffic.Flow.t list ->
  datagram list
(** Sample each flow's packets at 1-in-[sampling_rate] and pack the hits
    into datagrams ({!max_samples_per_datagram} each). Deterministic in
    the RNG. *)

val aggregate :
  datagram list ->
  lpm:(Ef_bgp.Ipv4.t -> Ef_bgp.Prefix.t option) ->
  Ef_traffic.Sflow.sample list
(** Collector-side: map each sampled packet's destination to a prefix and
    count per prefix (packets whose destination matches no known prefix
    are dropped, as a real collector does). *)
