type poll = {
  iface_id : int;
  out_bps : float;
  utilization : float;
}

type entry = {
  iface : Ef_netsim.Iface.t;
  mutable octets : float;
  mutable last_polled : float option; (* octets value at previous poll *)
}

type t = { entries : (int, entry) Hashtbl.t }

let create ifaces =
  let entries = Hashtbl.create 32 in
  List.iter
    (fun iface ->
      Hashtbl.replace entries (Ef_netsim.Iface.id iface)
        { iface; octets = 0.0; last_polled = None })
    ifaces;
  { entries }

let entry t iface_id =
  match Hashtbl.find_opt t.entries iface_id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Snmp: unknown interface %d" iface_id)

let account_bytes t ~iface_id ~bytes =
  if bytes < 0.0 then invalid_arg "Snmp.account_bytes: negative bytes";
  let e = entry t iface_id in
  e.octets <- e.octets +. bytes

let account_rate t ~iface_id ~rate_bps ~interval_s =
  account_bytes t ~iface_id ~bytes:(rate_bps *. interval_s /. 8.0)

let counter t ~iface_id = (entry t iface_id).octets

let reset t ~iface_id =
  let e = entry t iface_id in
  e.octets <- 0.0;
  e.last_polled <- None

let poll t ~interval_s =
  if interval_s <= 0.0 then invalid_arg "Snmp.poll: interval must be positive";
  Hashtbl.fold
    (fun iface_id e acc ->
      let out_bps =
        match e.last_polled with
        | None -> 0.0
        | Some prev when e.octets < prev -> 0.0 (* reset observed *)
        | Some prev -> (e.octets -. prev) *. 8.0 /. interval_s
      in
      e.last_polled <- Some e.octets;
      {
        iface_id;
        out_bps;
        utilization = out_bps /. Ef_netsim.Iface.capacity_bps e.iface;
      }
      :: acc)
    t.entries []
  |> List.sort (fun a b -> Int.compare a.iface_id b.iface_id)
