module Bgp = Ef_bgp

type peer_header = {
  peer_id : int;
  peer_addr : Bgp.Ipv4.t;
  peer_asn : Bgp.Asn.t;
  peer_bgp_id : Bgp.Ipv4.t;
  timestamp_s : int;
}

type msg =
  | Initiation of { sys_name : string; sys_descr : string }
  | Termination of { reason : int }
  | Peer_up of {
      header : peer_header;
      local_addr : Bgp.Ipv4.t;
      local_port : int;
      remote_port : int;
    }
  | Peer_down of { header : peer_header; reason : int }
  | Route_monitoring of { header : peer_header; update : Bgp.Msg.update }
  | Stats_report of { header : peer_header; routes_monitored : int }

let pp_header fmt h =
  Format.fprintf fmt "peer#%d as%a %a" h.peer_id Bgp.Asn.pp h.peer_asn
    Bgp.Ipv4.pp h.peer_addr

let pp fmt = function
  | Initiation { sys_name; _ } -> Format.fprintf fmt "INITIATION(%s)" sys_name
  | Termination { reason } -> Format.fprintf fmt "TERMINATION(%d)" reason
  | Peer_up { header; _ } -> Format.fprintf fmt "PEER_UP(%a)" pp_header header
  | Peer_down { header; reason } ->
      Format.fprintf fmt "PEER_DOWN(%a, %d)" pp_header header reason
  | Route_monitoring { header; update } ->
      Format.fprintf fmt "ROUTE_MONITORING(%a, %a)" pp_header header Bgp.Msg.pp
        (Bgp.Msg.Update update)
  | Stats_report { header; routes_monitored } ->
      Format.fprintf fmt "STATS(%a, %d)" pp_header header routes_monitored

let equal_header a b =
  a.peer_id = b.peer_id
  && Bgp.Ipv4.equal a.peer_addr b.peer_addr
  && Bgp.Asn.equal a.peer_asn b.peer_asn
  && Bgp.Ipv4.equal a.peer_bgp_id b.peer_bgp_id
  && a.timestamp_s = b.timestamp_s

let equal a b =
  match (a, b) with
  | Initiation x, Initiation y ->
      String.equal x.sys_name y.sys_name && String.equal x.sys_descr y.sys_descr
  | Termination x, Termination y -> x.reason = y.reason
  | Peer_up x, Peer_up y ->
      equal_header x.header y.header
      && Bgp.Ipv4.equal x.local_addr y.local_addr
      && x.local_port = y.local_port
      && x.remote_port = y.remote_port
  | Peer_down x, Peer_down y ->
      equal_header x.header y.header && x.reason = y.reason
  | Route_monitoring x, Route_monitoring y ->
      equal_header x.header y.header
      && Bgp.Msg.equal (Bgp.Msg.Update x.update) (Bgp.Msg.Update y.update)
  | Stats_report x, Stats_report y ->
      equal_header x.header y.header && x.routes_monitored = y.routes_monitored
  | ( ( Initiation _ | Termination _ | Peer_up _ | Peer_down _
      | Route_monitoring _ | Stats_report _ ),
      _ ) ->
      false

type error =
  | Truncated
  | Bad_version of int
  | Unknown_bmp_type of int
  | Bad_pdu of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated"
  | Bad_version v -> Format.fprintf fmt "bad BMP version %d" v
  | Unknown_bmp_type t -> Format.fprintf fmt "unknown BMP type %d" t
  | Bad_pdu s -> Format.fprintf fmt "bad PDU: %s" s

(* --- encoding ------------------------------------------------------- *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u16 buf v =
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_u32 buf v =
  add_u16 buf ((v lsr 16) land 0xFFFF);
  add_u16 buf (v land 0xFFFF)

let add_u32_i32 buf (v : int32) = add_u32 buf (Int32.to_int v land 0xFFFFFFFF)

let add_peer_header buf h =
  add_u8 buf 0 (* peer type: global instance *);
  add_u8 buf 0 (* flags: IPv4, pre-policy *);
  (* distinguisher: upper 4 bytes zero, lower 4 carry the dense peer id *)
  add_u32 buf 0;
  add_u32 buf h.peer_id;
  (* 16-byte address field, IPv4 in the last 4 bytes *)
  add_u32 buf 0;
  add_u32 buf 0;
  add_u32 buf 0;
  add_u32_i32 buf (Bgp.Ipv4.to_int32 h.peer_addr);
  add_u32 buf (Bgp.Asn.to_int h.peer_asn);
  add_u32_i32 buf (Bgp.Ipv4.to_int32 h.peer_bgp_id);
  add_u32 buf h.timestamp_s;
  add_u32 buf 0 (* microseconds *)

let add_tlv buf typ value =
  add_u16 buf typ;
  add_u16 buf (String.length value);
  Buffer.add_string buf value

let body_of = function
  | Initiation { sys_name; sys_descr } ->
      let b = Buffer.create 64 in
      add_tlv b 1 sys_descr;
      add_tlv b 2 sys_name;
      (4, Buffer.contents b)
  | Termination { reason } ->
      let b = Buffer.create 8 in
      let v = Buffer.create 2 in
      add_u16 v reason;
      add_tlv b 1 (Buffer.contents v);
      (5, Buffer.contents b)
  | Peer_up { header; local_addr; local_port; remote_port } ->
      let b = Buffer.create 64 in
      add_peer_header b header;
      add_u32 b 0;
      add_u32 b 0;
      add_u32 b 0;
      add_u32_i32 b (Bgp.Ipv4.to_int32 local_addr);
      add_u16 b local_port;
      add_u16 b remote_port;
      (* sent/received OPENs: minimal synthetic OPEN PDUs *)
      let open_pdu asn id =
        Bgp.Codec.encode (Bgp.Msg.make_open ~asn ~bgp_id:id ())
      in
      Buffer.add_string b (open_pdu (Bgp.Asn.of_int 64500) header.peer_bgp_id);
      Buffer.add_string b (open_pdu header.peer_asn header.peer_bgp_id);
      (3, Buffer.contents b)
  | Peer_down { header; reason } ->
      let b = Buffer.create 64 in
      add_peer_header b header;
      add_u8 b reason;
      (2, Buffer.contents b)
  | Route_monitoring { header; update } ->
      let b = Buffer.create 128 in
      add_peer_header b header;
      Buffer.add_string b (Bgp.Codec.encode (Bgp.Msg.Update update));
      (0, Buffer.contents b)
  | Stats_report { header; routes_monitored } ->
      let b = Buffer.create 64 in
      add_peer_header b header;
      add_u32 b 1 (* one stat *);
      add_u16 b 7 (* stat type: routes in Adj-RIB-In (non-standard reuse) *);
      add_u16 b 4;
      add_u32 b routes_monitored;
      (1, Buffer.contents b)

let encode msg =
  let typ, body = body_of msg in
  let buf = Buffer.create (6 + String.length body) in
  add_u8 buf 3 (* version *);
  add_u32 buf (6 + String.length body);
  add_u8 buf typ;
  Buffer.add_string buf body;
  Buffer.contents buf

(* --- decoding ------------------------------------------------------- *)

exception Fail of error

type reader = { buf : string; mutable pos : int; limit : int }

let need r n = if r.pos + n > r.limit then raise (Fail Truncated)

let u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u16 r =
  let a = u8 r in
  (a lsl 8) lor u8 r

let u32 r =
  let a = u16 r in
  (a lsl 16) lor u16 r

let u32_i32 r = Int32.of_int (u32 r)

let take r n =
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let remaining r = r.limit - r.pos

let read_peer_header r =
  let _peer_type = u8 r in
  let _flags = u8 r in
  let _dist_hi = u32 r in
  let peer_id = u32 r in
  let _pad1 = u32 r in
  let _pad2 = u32 r in
  let _pad3 = u32 r in
  let peer_addr = Bgp.Ipv4.of_int32 (u32_i32 r) in
  let peer_asn = Bgp.Asn.of_int (u32 r) in
  let peer_bgp_id = Bgp.Ipv4.of_int32 (u32_i32 r) in
  let timestamp_s = u32 r in
  let _usec = u32 r in
  { peer_id; peer_addr; peer_asn; peer_bgp_id; timestamp_s }

let read_tlvs r =
  let rec go acc =
    if remaining r < 4 then List.rev acc
    else begin
      let typ = u16 r in
      let len = u16 r in
      let v = take r len in
      go ((typ, v) :: acc)
    end
  in
  go []

let decode ?(pos = 0) buf =
  try
    let r = { buf; pos; limit = String.length buf } in
    let version = u8 r in
    if version <> 3 then raise (Fail (Bad_version version));
    let total = u32 r in
    if total < 6 then raise (Fail (Bad_pdu "length too small"));
    if pos + total > String.length buf then raise (Fail Truncated);
    let typ = u8 r in
    let body = { buf; pos = r.pos; limit = pos + total } in
    let msg =
      match typ with
      | 0 ->
          let header = read_peer_header body in
          let pdu_start = body.pos in
          (match Bgp.Codec.decode ~pos:pdu_start buf with
          | Ok (Bgp.Msg.Update update, _) -> Route_monitoring { header; update }
          | Ok (other, _) ->
              raise (Fail (Bad_pdu ("expected UPDATE, got " ^ Bgp.Msg.kind_to_string other)))
          | Error e -> raise (Fail (Bad_pdu (Bgp.Codec.error_to_string e))))
      | 1 ->
          let header = read_peer_header body in
          let _count = u32 body in
          let _styp = u16 body in
          let _slen = u16 body in
          let routes_monitored = u32 body in
          Stats_report { header; routes_monitored }
      | 2 ->
          let header = read_peer_header body in
          let reason = u8 body in
          Peer_down { header; reason }
      | 3 ->
          let header = read_peer_header body in
          let _pad1 = u32 body in
          let _pad2 = u32 body in
          let _pad3 = u32 body in
          let local_addr = Bgp.Ipv4.of_int32 (u32_i32 body) in
          let local_port = u16 body in
          let remote_port = u16 body in
          Peer_up { header; local_addr; local_port; remote_port }
      | 4 ->
          let tlvs = read_tlvs body in
          let find typ =
            Option.value
              (Option.map snd (List.find_opt (fun (t, _) -> t = typ) tlvs))
              ~default:""
          in
          Initiation { sys_descr = find 1; sys_name = find 2 }
      | 5 ->
          let tlvs = read_tlvs body in
          let reason =
            match List.find_opt (fun (t, _) -> t = 1) tlvs with
            | Some (_, v) when String.length v >= 2 ->
                (Char.code v.[0] lsl 8) lor Char.code v.[1]
            | Some _ | None -> 0
          in
          Termination { reason }
      | t -> raise (Fail (Unknown_bmp_type t))
    in
    Ok (msg, pos + total)
  with Fail e -> Error e

let decode_all buf =
  let rec go pos acc =
    if pos >= String.length buf then Ok (List.rev acc)
    else
      match decode ~pos buf with
      | Ok (msg, next) -> go next (msg :: acc)
      | Error e -> Error e
  in
  go 0 []
