(** Snapshot serialization: record controller inputs, replay them later.

    The production controller is audited by replaying recorded inputs
    through candidate configurations; this module gives the reproduction
    the same workflow. A trace is a plain-text sequence of snapshot
    blocks:

    {v
    SNAPSHOT time=72000
    IFACE id=0 name=pni capacity=10000000000 shared=false
    PEER id=0 name=pni asn=100 kind=private router-id=10.0.0.1 addr=172.16.0.1 iface=0
    RATE 10.1.0.0/16 1250000.5
    ROUTE 10.1.0.0/16 peer=0 origin=IGP path=100 nh=172.16.0.1 med=- lp=400 comms=65000:10
    END
    v}

    ROUTE lines appear in decision-ranked order per prefix, so a replayed
    snapshot reproduces the original preference order exactly (no
    re-ranking is attempted — the trace is the ground truth). *)

val record : Snapshot.t -> string
(** Serialise one snapshot (requires every rated prefix's routes and the
    peer↔interface mapping to be resolvable through the snapshot). *)

val record_many : Snapshot.t list -> string

val parse : string -> (Snapshot.t, string) result
(** Parse exactly one snapshot block. *)

val parse_many : string -> (Snapshot.t list, string) result
(** Parse a whole trace; fails with a line-numbered message on the first
    malformed line. *)

val save : string -> Snapshot.t list -> unit
(** [save path snapshots] writes a trace file. *)

val load : string -> (Snapshot.t list, string) result
