(** Interface counters, SNMP-style.

    Egress bytes are accumulated into monotonic per-interface counters;
    polling computes rates from counter deltas — including correct
    handling of the first poll (no previous sample → no rate) and counter
    resets (a smaller value than last time reads as a reset, not a
    negative rate). *)

type poll = {
  iface_id : int;
  out_bps : float;
  utilization : float;  (** out_bps / capacity *)
}

type t

val create : Ef_netsim.Iface.t list -> t

val account_bytes : t -> iface_id:int -> bytes:float -> unit
(** Add egress bytes to an interface's counter. Unknown interface ids
    raise [Invalid_argument]. *)

val account_rate : t -> iface_id:int -> rate_bps:float -> interval_s:float -> unit
(** Convenience: account [rate · interval / 8] bytes. *)

val counter : t -> iface_id:int -> float
(** Raw octet counter (monotonic since creation/reset). *)

val reset : t -> iface_id:int -> unit
(** Simulate a device counter reset (line-card reseat). *)

val poll : t -> interval_s:float -> poll list
(** Rates since the previous poll, ascending by interface id. The first
    poll after creation or reset reports zero. *)
