type t = {
  name : string;
  region : Region.t;
  asn : Ef_bgp.Asn.t;
  rib : Ef_bgp.Rib.t;
  mutable interfaces : Iface.t list; (* reversed creation order *)
  peer_iface : (int, int) Hashtbl.t; (* peer id -> iface id *)
  mutable peers : Ef_bgp.Peer.t list;
}

let create ?decision ~name ~region ~asn () =
  {
    name;
    region;
    asn;
    rib = Ef_bgp.Rib.create ?decision ();
    interfaces = [];
    peer_iface = Hashtbl.create 32;
    peers = [];
  }

let name t = t.name
let region t = t.region
let asn t = t.asn
let rib t = t.rib

let add_interface t ~name ~capacity_bps ~shared =
  let id = List.length t.interfaces in
  let iface = Iface.make ~id ~name ~capacity_bps ~shared in
  t.interfaces <- iface :: t.interfaces;
  iface

let interfaces t = List.rev t.interfaces
let interface t id = List.find_opt (fun i -> Iface.id i = id) t.interfaces
let interface_count t = List.length t.interfaces
let peers t = List.rev t.peers

let peer t id =
  List.find_opt (fun p -> Ef_bgp.Peer.id p = id) t.peers

let add_peer t peer ~iface ~policy =
  (match interface t (Iface.id iface) with
  | Some existing when Iface.equal existing iface -> ()
  | Some _ | None -> invalid_arg "Pop.add_peer: interface not part of this PoP");
  Ef_bgp.Rib.add_peer t.rib peer ~policy;
  Hashtbl.replace t.peer_iface (Ef_bgp.Peer.id peer) (Iface.id iface);
  t.peers <- peer :: t.peers

let iface_of_peer t ~peer_id =
  match Hashtbl.find_opt t.peer_iface peer_id with
  | None -> invalid_arg (Printf.sprintf "Pop.iface_of_peer: unknown peer %d" peer_id)
  | Some iface_id -> (
      match interface t iface_id with
      | Some i -> i
      | None -> assert false)

let iface_of_route t route =
  iface_of_peer t ~peer_id:(Ef_bgp.Route.peer_id route)

let peers_on_iface t ~iface_id =
  List.filter
    (fun p -> Hashtbl.find_opt t.peer_iface (Ef_bgp.Peer.id p) = Some iface_id)
    (peers t)

let announce t ~peer_id prefix attrs =
  Ef_bgp.Rib.announce t.rib ~peer_id prefix attrs

let withdraw t ~peer_id prefix = Ef_bgp.Rib.withdraw t.rib ~peer_id prefix
let drop_peer t ~peer_id = Ef_bgp.Rib.drop_peer t.rib ~peer_id

let total_capacity_bps t =
  List.fold_left (fun acc i -> acc +. Iface.capacity_bps i) 0.0 t.interfaces

let pp fmt t =
  Format.fprintf fmt "pop:%s(%a, %d ifaces, %d peers, %d prefixes)" t.name
    Region.pp t.region (interface_count t) (List.length t.peers)
    (Ef_bgp.Rib.prefix_count t.rib)
