(** A Point of Presence: the unit Edge Fabric operates on.

    One logical peering router (a {!Ef_bgp.Rib} — the paper's PoPs have
    four PRs, but capacity and routing state are per-peering, so a single
    logical RIB preserves the controller-visible behaviour), a set of
    egress interfaces, and the peers attached to them. *)

type t

val create :
  ?decision:Ef_bgp.Decision.config ->
  name:string ->
  region:Region.t ->
  asn:Ef_bgp.Asn.t ->
  unit ->
  t

val name : t -> string
val region : t -> Region.t
val asn : t -> Ef_bgp.Asn.t
val rib : t -> Ef_bgp.Rib.t

val add_interface :
  t -> name:string -> capacity_bps:float -> shared:bool -> Iface.t
(** Interfaces get dense ids in creation order. *)

val add_peer : t -> Ef_bgp.Peer.t -> iface:Iface.t -> policy:Ef_bgp.Policy.t -> unit
(** Attach a neighbor to an existing interface of this PoP. The peer is
    registered in the RIB with the given import policy. *)

val interfaces : t -> Iface.t list
val interface : t -> int -> Iface.t option
val interface_count : t -> int
val peers : t -> Ef_bgp.Peer.t list
val peer : t -> int -> Ef_bgp.Peer.t option

val iface_of_peer : t -> peer_id:int -> Iface.t
(** Raises [Invalid_argument] for unknown peers. *)

val iface_of_route : t -> Ef_bgp.Route.t -> Iface.t
val peers_on_iface : t -> iface_id:int -> Ef_bgp.Peer.t list

val announce :
  t -> peer_id:int -> Ef_bgp.Prefix.t -> Ef_bgp.Attrs.t -> Ef_bgp.Rib.change list
(** Feed a route from a neighbor into the PoP's RIB (through policy). *)

val withdraw : t -> peer_id:int -> Ef_bgp.Prefix.t -> Ef_bgp.Rib.change list
val drop_peer : t -> peer_id:int -> Ef_bgp.Rib.change list

val total_capacity_bps : t -> float
val pp : Format.formatter -> t -> unit
