module Bgp = Ef_bgp

type t = {
  pop_region : Region.t;
  origin_region : Bgp.Prefix.t -> Region.t;
  seed : int;
}

let create ~pop_region ~origin_region ~seed = { pop_region; origin_region; seed }

(* stable per-(prefix, peer) uniform in [0,1) from a hash *)
let stable_unit t prefix peer_id =
  let h =
    (Bgp.Prefix.hash prefix * 1_000_003) lxor (peer_id * 8191) lxor t.seed
  in
  let mixed =
    let z = Int64.of_int h in
    let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    Int64.(logxor z (shift_right_logical z 31))
  in
  Int64.to_float (Int64.shift_right_logical mixed 11) /. 9007199254740992.0

let per_hop_penalty_ms = 4.0

let kind_multiplier = function
  | Bgp.Peer.Private_peer -> 0.90
  | Bgp.Peer.Public_peer -> 0.95
  | Bgp.Peer.Route_server -> 1.0
  | Bgp.Peer.Transit -> 1.05

let base_rtt_ms t prefix route =
  let origin = t.origin_region prefix in
  let propagation = Region.base_rtt_ms t.pop_region origin in
  let hops = float_of_int (Bgp.Route.as_path_length route) in
  let jitter =
    (* [0.80, 1.20): a fifth of paths end up meaningfully better or worse
       than their nominal class, so "alternate is better" really occurs *)
    0.80 +. (0.40 *. stable_unit t prefix (Bgp.Route.peer_id route))
  in
  ((propagation *. kind_multiplier (Bgp.Route.peer_kind route))
  +. (hops *. per_hop_penalty_ms))
  *. jitter

let congestion_penalty_ms ~utilization =
  let knee = 0.90 and cap_util = 1.20 and cap_ms = 150.0 in
  if utilization <= knee then 0.0
  else
    let x = (Float.min utilization cap_util -. knee) /. (cap_util -. knee) in
    cap_ms *. x *. x

let rtt_ms t prefix route ~utilization =
  base_rtt_ms t prefix route +. congestion_penalty_ms ~utilization

let sample_rtt_ms t rng prefix route ~utilization =
  let noise = Ef_util.Rng.lognormal rng ~mu:0.0 ~sigma:0.05 in
  rtt_ms t prefix route ~utilization *. noise
