lib/netsim/scenario.ml: List Region String Topo_gen
