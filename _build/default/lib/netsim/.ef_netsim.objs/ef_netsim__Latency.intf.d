lib/netsim/latency.mli: Ef_bgp Ef_util Region
