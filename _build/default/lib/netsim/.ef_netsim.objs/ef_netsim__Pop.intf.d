lib/netsim/pop.mli: Ef_bgp Format Iface Region
