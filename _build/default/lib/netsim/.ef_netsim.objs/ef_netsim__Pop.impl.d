lib/netsim/pop.ml: Ef_bgp Format Hashtbl Iface List Printf Region
