lib/netsim/iface.ml: Ef_util Format Int
