lib/netsim/topo_gen.mli: Ef_bgp Pop Region
