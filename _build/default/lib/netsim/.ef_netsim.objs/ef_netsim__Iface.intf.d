lib/netsim/iface.mli: Format
