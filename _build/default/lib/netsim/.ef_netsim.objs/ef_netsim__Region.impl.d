lib/netsim/region.ml: Array Format List String
