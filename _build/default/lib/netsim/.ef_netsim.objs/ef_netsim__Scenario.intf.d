lib/netsim/scenario.mli: Topo_gen
