lib/netsim/topo_gen.ml: Array Ef_bgp Ef_util Float Hashtbl Int32 List Option Pop Printf Region Rng Units Zipf
