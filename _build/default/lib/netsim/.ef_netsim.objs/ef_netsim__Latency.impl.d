lib/netsim/latency.ml: Ef_bgp Ef_util Float Int64 Region
