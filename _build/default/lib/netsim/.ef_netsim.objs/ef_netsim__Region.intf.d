lib/netsim/region.mli: Format
