type t = {
  id : int;
  name : string;
  capacity_bps : float;
  shared : bool;
}

let make ~id ~name ~capacity_bps ~shared =
  if capacity_bps <= 0.0 then invalid_arg "Iface.make: capacity must be positive";
  { id; name; capacity_bps; shared }

let id t = t.id
let name t = t.name
let capacity_bps t = t.capacity_bps
let shared t = t.shared
let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id

let pp fmt t =
  Format.fprintf fmt "%s(#%d, %a%s)" t.name t.id Ef_util.Units.pp_rate
    t.capacity_bps
    (if t.shared then ", shared" else "")
