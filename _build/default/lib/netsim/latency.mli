(** Path latency model.

    The paper measures per-path RTTs by routing a slice of production
    flows over alternate paths; here RTT is synthesized deterministically
    per (prefix, egress route):

    - a propagation base from the PoP-region × origin-region pair;
    - a per-AS-hop transit penalty (longer AS paths ride more networks);
    - a stable per-(prefix, peer) multiplicative jitter drawn from a hash,
      so some transit paths genuinely beat peer paths (the paper found
      alternate paths are as good or better surprisingly often);
    - a congestion penalty that grows quadratically once the egress
      interface utilization crosses ~90 % (queueing delay), which is what
      makes overload visible to the measurement subsystem. *)

type t

val create :
  pop_region:Region.t ->
  origin_region:(Ef_bgp.Prefix.t -> Region.t) ->
  seed:int ->
  t

val base_rtt_ms : t -> Ef_bgp.Prefix.t -> Ef_bgp.Route.t -> float
(** Uncongested RTT of reaching [prefix] via [route]. Deterministic. *)

val rtt_ms :
  t -> Ef_bgp.Prefix.t -> Ef_bgp.Route.t -> utilization:float -> float
(** Base RTT plus the congestion penalty for the egress interface's
    current utilization. *)

val sample_rtt_ms :
  t ->
  Ef_util.Rng.t ->
  Ef_bgp.Prefix.t ->
  Ef_bgp.Route.t ->
  utilization:float ->
  float
(** One measured RTT sample: {!rtt_ms} plus lognormal measurement noise —
    what the alternate-path measurement pipeline actually sees. *)

val congestion_penalty_ms : utilization:float -> float
(** 0 below 90 % utilization, then quadratic up to a 150 ms cap at/above
    120 %. Exposed for tests and for the experiment drivers. *)
