type t =
  | Na_east
  | Na_west
  | Europe
  | Asia
  | South_america
  | Oceania

let all = [ Na_east; Na_west; Europe; Asia; South_america; Oceania ]

let to_string = function
  | Na_east -> "na-east"
  | Na_west -> "na-west"
  | Europe -> "europe"
  | Asia -> "asia"
  | South_america -> "south-america"
  | Oceania -> "oceania"

let of_string s =
  List.find_opt (fun r -> String.equal (to_string r) s) all

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b

let index = function
  | Na_east -> 0
  | Na_west -> 1
  | Europe -> 2
  | Asia -> 3
  | South_america -> 4
  | Oceania -> 5

(* Rough great-circle RTTs; what matters downstream is the ordering
   (same-region < cross-continent) rather than exact values. *)
let matrix =
  [|
    (*            naE    naW    eu     asia   sam    oce *)
    (* naE *) [| 10.0; 65.0; 85.0; 180.0; 120.0; 200.0 |];
    (* naW *) [| 65.0; 10.0; 140.0; 110.0; 170.0; 140.0 |];
    (* eu  *) [| 85.0; 140.0; 10.0; 160.0; 190.0; 280.0 |];
    (* asia*) [| 180.0; 110.0; 160.0; 15.0; 280.0; 120.0 |];
    (* sam *) [| 120.0; 170.0; 190.0; 280.0; 15.0; 250.0 |];
    (* oce *) [| 200.0; 140.0; 280.0; 120.0; 250.0; 15.0 |];
  |]

let base_rtt_ms a b = matrix.(index a).(index b)

let utc_offset_hours = function
  | Na_east -> -5
  | Na_west -> -8
  | Europe -> 1
  | Asia -> 8
  | South_america -> -3
  | Oceania -> 10
