(** Coarse geographic regions.

    PoPs and client ASes live in regions; the latency model derives base
    RTTs from the region pair, and the diurnal traffic model derives each
    region's local-time phase from its UTC offset. *)

type t =
  | Na_east
  | Na_west
  | Europe
  | Asia
  | South_america
  | Oceania

val all : t list
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val base_rtt_ms : t -> t -> float
(** Typical propagation RTT between regions in milliseconds (symmetric;
    same-region pairs are ~10 ms). *)

val utc_offset_hours : t -> int
(** Representative UTC offset used to phase the diurnal traffic curve. *)
