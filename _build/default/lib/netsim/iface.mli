(** Egress interfaces at a PoP.

    Capacity lives on interfaces, not peers: several public peers and the
    route server share one IXP port, while each private interconnect and
    each transit provider gets a dedicated interface. The allocator's whole
    job is keeping these below their thresholds. *)

type t = private {
  id : int;              (** dense, unique within the PoP *)
  name : string;
  capacity_bps : float;
  shared : bool;         (** true for IXP ports carrying several peers *)
}

val make : id:int -> name:string -> capacity_bps:float -> shared:bool -> t
val id : t -> int
val name : t -> string
val capacity_bps : t -> float
val shared : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
