lib/traffic/demand.ml: Ef_bgp Ef_netsim Float Int64 List
