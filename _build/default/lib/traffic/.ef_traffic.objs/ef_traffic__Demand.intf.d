lib/traffic/demand.mli: Ef_bgp Ef_netsim
