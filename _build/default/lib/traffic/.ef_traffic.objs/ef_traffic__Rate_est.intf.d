lib/traffic/rate_est.mli: Ef_bgp Sflow
