lib/traffic/sflow.mli: Ef_bgp Ef_util Flow
