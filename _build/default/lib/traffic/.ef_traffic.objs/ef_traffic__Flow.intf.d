lib/traffic/flow.mli: Ef_bgp Ef_util Format
