lib/traffic/flow.ml: Array Ef_bgp Ef_util Float Format List Rng
