lib/traffic/rate_est.ml: Ef_bgp Ef_util Ewma Hashtbl List Sflow
