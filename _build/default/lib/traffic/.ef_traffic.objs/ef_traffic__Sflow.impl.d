lib/traffic/sflow.ml: Ef_bgp Ef_util Flow Hashtbl List Option Rng
