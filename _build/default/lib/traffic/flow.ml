module Bgp = Ef_bgp
open Ef_util

type t = {
  client : Bgp.Ipv4.t;
  dst_prefix : Bgp.Prefix.t;
  bytes : int;
  packets : int;
}

let pp fmt f =
  Format.fprintf fmt "flow{%a in %a, %dB/%dpkt}" Bgp.Ipv4.pp f.client
    Bgp.Prefix.pp f.dst_prefix f.bytes f.packets

let avg_packet_bytes = 1000

let client_addr rng prefix =
  let span = Bgp.Prefix.size prefix in
  let offset =
    if span <= 1.0 then 0 else Rng.int rng (min (int_of_float span) (1 lsl 20))
  in
  Bgp.Ipv4.add (Bgp.Prefix.network prefix) offset

let generate rng ~prefix ~rate_bps ~interval_s ~max_flows =
  let total_bytes = rate_bps *. interval_s /. 8.0 in
  if total_bytes < 1.0 then []
  else begin
    (* target ~64 KB mean flow size, capped flow count *)
    let target_flows =
      int_of_float (Float.ceil (total_bytes /. 65536.0))
      |> min max_flows |> max 1
    in
    (* Pareto weights, then scale so bytes sum exactly *)
    let raw =
      Array.init target_flows (fun _ -> Rng.pareto rng ~alpha:1.2 ~xmin:1.0)
    in
    let sum = Array.fold_left ( +. ) 0.0 raw in
    Array.to_list raw
    |> List.map (fun w ->
           let bytes = int_of_float (total_bytes *. w /. sum) |> max 1 in
           let packets = max 1 ((bytes + avg_packet_bytes - 1) / avg_packet_bytes) in
           { client = client_addr rng prefix; dst_prefix = prefix; bytes; packets })
  end

let total_bytes flows = List.fold_left (fun acc f -> acc + f.bytes) 0 flows
let total_packets flows = List.fold_left (fun acc f -> acc + f.packets) 0 flows
