module Bgp = Ef_bgp
open Ef_util

type config = {
  sampling_rate : int;
  interval_s : float;
}

let default_config = { sampling_rate = 4096; interval_s = 30.0 }

type sample = {
  sample_prefix : Bgp.Prefix.t;
  sampled_packets : int;
}

let sample_flows config rng flows =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Flow.t) ->
      (* Binomial(n, 1/N) sampled as Poisson for large n, exact loop for
         small n *)
      let p = 1.0 /. float_of_int config.sampling_rate in
      let hits =
        if f.Flow.packets > 1000 then
          Rng.poisson rng ~lambda:(float_of_int f.Flow.packets *. p)
        else begin
          let count = ref 0 in
          for _ = 1 to f.Flow.packets do
            if Rng.chance rng p then incr count
          done;
          !count
        end
      in
      if hits > 0 then
        let prev =
          Option.value (Hashtbl.find_opt tbl f.Flow.dst_prefix) ~default:0
        in
        Hashtbl.replace tbl f.Flow.dst_prefix (prev + hits))
    flows;
  Hashtbl.fold
    (fun prefix hits acc -> { sample_prefix = prefix; sampled_packets = hits } :: acc)
    tbl []
  |> List.sort (fun a b -> Bgp.Prefix.compare a.sample_prefix b.sample_prefix)

let expected_samples config ~rate_bps =
  rate_bps *. config.interval_s
  /. (8.0 *. float_of_int Flow.avg_packet_bytes)
  /. float_of_int config.sampling_rate

let sample_rate config rng ~prefix ~rate_bps =
  let lambda = expected_samples config ~rate_bps in
  { sample_prefix = prefix; sampled_packets = Rng.poisson rng ~lambda }

let estimate_rate_bps config sample =
  float_of_int sample.sampled_packets
  *. float_of_int config.sampling_rate
  *. float_of_int Flow.avg_packet_bytes *. 8.0
  /. config.interval_s
