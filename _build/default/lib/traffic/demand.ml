module Bgp = Ef_bgp

type event = {
  event_prefix : Bgp.Prefix.t;
  start_s : int;
  duration_s : int;
  multiplier : float;
}

type t = {
  events : event list;
  jitter_amplitude : float;
  prefix_weight : Bgp.Prefix.t -> float;
  origin_region : Bgp.Prefix.t -> Ef_netsim.Region.t;
  total_peak_bps : float;
  seed : int;
}

let create ?(events = []) ?(jitter_amplitude = 0.1) ~prefix_weight ~origin_region
    ~total_peak_bps ~seed () =
  { events; jitter_amplitude; prefix_weight; origin_region; total_peak_bps; seed }

let diurnal_factor region ~time_s =
  let offset = Ef_netsim.Region.utc_offset_hours region in
  let local_h =
    Float.rem
      (float_of_int time_s /. 3600.0 +. float_of_int offset +. 48.0)
      24.0
  in
  (* peak 1.0 at 21:00 local, trough 0.35 at 09:00 local *)
  0.675 +. (0.325 *. cos (2.0 *. Float.pi *. (local_h -. 21.0) /. 24.0))

(* stable hash -> [0,1) for (prefix, block, seed) *)
let stable_unit t prefix block =
  let h = (Bgp.Prefix.hash prefix * 7_368_787) lxor (block * 104_729) lxor t.seed in
  let z = Int64.of_int h in
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let jitter_block_s = 300

let jitter t prefix ~time_s =
  let block = time_s / jitter_block_s in
  1.0 +. (t.jitter_amplitude *. ((2.0 *. stable_unit t prefix block) -. 1.0))

let event_multiplier t prefix ~time_s =
  List.fold_left
    (fun acc e ->
      if
        Bgp.Prefix.equal e.event_prefix prefix
        && time_s >= e.start_s
        && time_s < e.start_s + e.duration_s
      then acc *. e.multiplier
      else acc)
    1.0 t.events

let rate_bps t prefix ~time_s =
  let w = t.prefix_weight prefix in
  if w <= 0.0 then 0.0
  else
    w *. t.total_peak_bps
    *. diurnal_factor (t.origin_region prefix) ~time_s
    *. jitter t prefix ~time_s
    *. event_multiplier t prefix ~time_s

let total_rate_bps t ~prefixes ~time_s =
  List.fold_left (fun acc p -> acc +. rate_bps t p ~time_s) 0.0 prefixes

let events t = t.events
