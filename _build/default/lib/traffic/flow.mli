(** Flow records: the unit the samplers observe.

    The simulator mostly works with aggregate rates, but the sampling
    pipeline is validated against an explicit flow level: a prefix's
    offered rate is decomposed into flows with heavy-tailed sizes, packets
    are drawn from flows, and the sFlow estimator is checked against the
    ground truth it was generated from. *)

type t = {
  client : Ef_bgp.Ipv4.t;     (** an address inside the client prefix *)
  dst_prefix : Ef_bgp.Prefix.t; (** the client prefix (egress aggregation key) *)
  bytes : int;
  packets : int;
}

val pp : Format.formatter -> t -> unit

val avg_packet_bytes : int
(** 1000 — the packet size the estimator assumes (mostly-MTU video). *)

val generate :
  Ef_util.Rng.t ->
  prefix:Ef_bgp.Prefix.t ->
  rate_bps:float ->
  interval_s:float ->
  max_flows:int ->
  t list
(** Decompose [rate_bps · interval_s] bytes of traffic to [prefix] into
    at most [max_flows] flows with Pareto-distributed sizes. The byte
    total is preserved exactly (up to rounding); flow count scales with
    volume but is capped to keep big simulations tractable. *)

val total_bytes : t list -> int
val total_packets : t list -> int
