(** Offered traffic per prefix over a simulated day.

    rate(p, t) = weight(p) · PoP peak · diurnal(t, region(p)) · jitter(p, t)
    (+ any active flash-crowd events). The diurnal curve peaks at ~21:00
    in the prefix's local time and bottoms out around 35 % of peak — the
    standard eyeball-traffic shape; regional phase differences are what
    make distant-origin prefixes off-peak while local ones peak. Jitter is
    piecewise-constant over 5-minute blocks and deterministic, so a rerun
    of the same scenario sees identical demand. *)

type event = {
  event_prefix : Ef_bgp.Prefix.t;
  start_s : int;
  duration_s : int;
  multiplier : float;  (** e.g. 3.0 = a 3× flash crowd on that prefix *)
}

type t

val create :
  ?events:event list ->
  ?jitter_amplitude:float ->
  prefix_weight:(Ef_bgp.Prefix.t -> float) ->
  origin_region:(Ef_bgp.Prefix.t -> Ef_netsim.Region.t) ->
  total_peak_bps:float ->
  seed:int ->
  unit ->
  t
(** [jitter_amplitude] defaults to 0.1 (±10 %). *)

val rate_bps : t -> Ef_bgp.Prefix.t -> time_s:int -> float
(** Offered rate of one prefix at one instant. *)

val total_rate_bps : t -> prefixes:Ef_bgp.Prefix.t list -> time_s:int -> float

val diurnal_factor : Ef_netsim.Region.t -> time_s:int -> float
(** The raw diurnal multiplier in [0.35, 1.0] (no jitter, no events);
    exposed for tests and capacity planning. *)

val events : t -> event list
