(** sFlow-style packet sampling and rate estimation.

    Peering routers sample 1 in N packets; the collector scales sampled
    counts back up to estimate per-prefix rates. Sampling noise is real
    and the paper's controller tolerates it (EWMA smoothing + utilization
    thresholds below 100 %); both the faithful flow-level path and a
    statistically equivalent fast path are provided. *)

type config = {
  sampling_rate : int;     (** 1/N packets observed, e.g. 4096 *)
  interval_s : float;      (** collection interval *)
}

val default_config : config
(** 1:4096 sampling over 30 s — production-ish values. *)

type sample = {
  sample_prefix : Ef_bgp.Prefix.t;
  sampled_packets : int;
}

val sample_flows : config -> Ef_util.Rng.t -> Flow.t list -> sample list
(** Faithful path: Binomial(packets, 1/N) per flow, aggregated per
    prefix. Prefixes with zero sampled packets are omitted — exactly the
    visibility loss a real collector has for thin prefixes. *)

val sample_rate :
  config -> Ef_util.Rng.t -> prefix:Ef_bgp.Prefix.t -> rate_bps:float -> sample
(** Fast path: Poisson draw with the same mean as the flow-level
    pipeline; statistically equivalent aggregate behaviour at a fraction
    of the cost. *)

val estimate_rate_bps : config -> sample -> float
(** Scale a sampled count back to an estimated prefix rate. *)

val expected_samples : config -> rate_bps:float -> float
(** Mean sampled-packet count for a rate — for tests sizing noise. *)
