(** Per-prefix rate estimation: sFlow samples in, smoothed bps out.

    Maintains one EWMA per prefix. Prefixes that produced no samples in
    an interval must be decayed explicitly ({!tick_absent}) or stale
    estimates would pin traffic to prefixes that went quiet. *)

type t

val create : ?alpha:float -> Sflow.config -> t
(** [alpha] defaults to 0.3: reacts within a few 30 s intervals without
    following single-interval sampling noise. *)

val observe : t -> Sflow.sample list -> unit
(** Fold one interval's samples in (absent prefixes are untouched —
    combine with {!tick_absent}). *)

val tick_absent : t -> unit
(** Decay every tracked prefix that was not updated since the last call:
    they observe a zero-rate interval. Call once per interval, after
    {!observe}. *)

val estimate_bps : t -> Ef_bgp.Prefix.t -> float
(** 0 for unknown prefixes. *)

val snapshot : t -> (Ef_bgp.Prefix.t * float) list
(** All tracked prefixes with estimates, descending by rate. *)

val tracked : t -> int
val drop_below : t -> float -> unit
(** Forget prefixes whose estimate fell under the floor (keeps the table
    from accumulating dead prefixes across a day). *)
