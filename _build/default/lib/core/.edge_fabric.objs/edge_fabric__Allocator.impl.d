lib/core/allocator.ml: Config Ef_bgp Ef_collector Ef_netsim Format Hashtbl List Option Override Projection String
