lib/core/override.mli: Ef_bgp Format
