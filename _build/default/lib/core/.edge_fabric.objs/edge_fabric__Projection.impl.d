lib/core/projection.ml: Array Ef_bgp Ef_collector Ef_netsim List
