lib/core/override.ml: Ef_bgp Ef_util Format List
