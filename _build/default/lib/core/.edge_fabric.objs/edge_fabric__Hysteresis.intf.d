lib/core/hysteresis.mli: Config Ef_bgp Override Projection
