lib/core/controller.ml: Allocator Config Ef_bgp Ef_collector Ef_netsim Guard Hysteresis List Logs Override Projection
