lib/core/projection.mli: Ef_bgp Ef_collector Ef_netsim
