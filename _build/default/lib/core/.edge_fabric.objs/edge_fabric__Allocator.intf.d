lib/core/allocator.mli: Config Ef_collector Ef_netsim Override Projection Stdlib
