lib/core/guard.mli: Ef_bgp Ef_collector Format Override
