lib/core/hysteresis.ml: Config Ef_bgp Ef_netsim List Option Override Projection
