lib/core/config.ml: Ef_bgp Format Guard
