lib/core/guard.ml: Ef_bgp Ef_collector Ef_netsim Format List Override Projection
