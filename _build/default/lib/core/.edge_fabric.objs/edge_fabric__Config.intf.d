lib/core/config.mli: Format Guard
