lib/core/controller.mli: Allocator Config Ef_bgp Ef_collector Ef_netsim Guard Hysteresis Override Projection
