(** The per-PoP controller loop.

    One call to {!cycle} is one 30-second controller round:

    + project BGP-preferred placement from the snapshot;
    + run the stateless {!Allocator} to get the desired override set;
    + reconcile with the installed set through {!Hysteresis};
    + report the enforced placement and the BGP messages (announcements
      and withdrawals) that realize the delta on the peering routers.

    The controller holds no routing state of its own beyond the installed
    override set — restart it and the next cycle recomputes everything
    from the feeds, as the paper's deployment does. *)

type cycle_stats = {
  time_s : int;
  total_bps : float;
  detoured_bps : float;            (** traffic on overridden placements *)
  preferred : Projection.t;        (** BGP-only placement *)
  enforced : Projection.t;         (** placement with active overrides *)
  allocator : Allocator.result;
  reconcile : Hysteresis.step_result;
  guard_dropped : Override.t list;
      (** proposals shed by the {!Guard} budgets this cycle *)
  guard_violations : Guard.violation list;
      (** audit findings on the enforced set (also logged) *)
  overloaded_before : (Ef_netsim.Iface.t * float) list;
  overloaded_after : (Ef_netsim.Iface.t * float) list;
}

type t

val create : ?config:Config.t -> name:string -> unit -> t
val name : t -> string
val config : t -> Config.t
val active_overrides : t -> Override.t list
val cycles_run : t -> int

val cycle : t -> Ef_collector.Snapshot.t -> cycle_stats

val bgp_updates : t -> cycle_stats -> Ef_bgp.Msg.update list
(** The wire-level enforcement of one cycle: withdrawals for removed
    overrides, announcements for added and retargeted ones (a retarget
    is a plain re-announcement — BGP implicit withdraw). *)

val detour_fraction : cycle_stats -> float
(** detoured_bps / total_bps (0 when idle). *)
