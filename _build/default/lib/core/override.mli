(** Egress overrides: the controller's output.

    An override pins one prefix to a specific egress route. Enforcement
    is plain BGP: the controller announces the prefix to the peering
    router with a LOCAL_PREF above every policy tier and a marker
    community; the router's ordinary decision process then selects it.
    Removal is a BGP withdrawal — no custom protocol, which is the
    paper's deployability argument. *)

type t = {
  prefix : Ef_bgp.Prefix.t;     (** possibly a /24 child of the BGP prefix *)
  target : Ef_bgp.Route.t;      (** the detour route (identifies peer + next hop) *)
  from_iface : int;             (** interface relieved *)
  to_iface : int;               (** interface receiving the traffic *)
  preference_level : int;       (** 0 = would be best anyway, 1 = 2nd choice… *)
  rate_bps : float;             (** prefix rate when the decision was made *)
}

val override_community : Ef_bgp.Community.t
(** 65000:911 — marks injected routes so that dashboards, policies and
    the tests can recognize them. *)

val make :
  prefix:Ef_bgp.Prefix.t ->
  target:Ef_bgp.Route.t ->
  from_iface:int ->
  to_iface:int ->
  preference_level:int ->
  rate_bps:float ->
  t

val target_peer_id : t -> int

val to_announcement : t -> local_pref:int -> Ef_bgp.Msg.update
(** The UPDATE injecting this override: NLRI = the override prefix,
    next hop = the target route's next hop, LOCAL_PREF as given,
    {!override_community} attached, and the target's AS path (so loop
    detection and debugging stay meaningful). *)

val to_withdrawal : t -> Ef_bgp.Msg.update

val is_override_route : Ef_bgp.Route.t -> bool
(** Does a route carry the override marker community? *)

val lookup : t list -> Ef_bgp.Prefix.t -> Ef_bgp.Route.t option
(** Build a prefix → target-route function from an override set (what
    {!Edge_fabric.Projection.project} consumes). Later entries win on
    duplicate prefixes. *)

val level_of : t list -> Ef_bgp.Prefix.t -> int option
(** The preference level an override steers a prefix to, if any. *)

val equal : t -> t -> bool
(** Same prefix steered to the same peer (rate and bookkeeping fields are
    not compared — a re-decided override with fresh rate is "the same"). *)

val pp : Format.formatter -> t -> unit
