module Bgp = Ef_bgp

type t = {
  prefix : Bgp.Prefix.t;
  target : Bgp.Route.t;
  from_iface : int;
  to_iface : int;
  preference_level : int;
  rate_bps : float;
}

let override_community = Bgp.Community.make 65000 911

let make ~prefix ~target ~from_iface ~to_iface ~preference_level ~rate_bps =
  { prefix; target; from_iface; to_iface; preference_level; rate_bps }

let target_peer_id t = Bgp.Route.peer_id t.target

let to_announcement t ~local_pref =
  let target_attrs = Bgp.Route.attrs t.target in
  let attrs =
    Bgp.Attrs.make ~origin:target_attrs.Bgp.Attrs.origin
      ~communities:(override_community :: target_attrs.Bgp.Attrs.communities)
      ~local_pref:(Some local_pref)
      ~as_path:target_attrs.Bgp.Attrs.as_path
      ~next_hop:target_attrs.Bgp.Attrs.next_hop ()
  in
  { Bgp.Msg.withdrawn = []; attrs = Some attrs; nlri = [ t.prefix ] }

let to_withdrawal t =
  { Bgp.Msg.withdrawn = [ t.prefix ]; attrs = None; nlri = [] }

let is_override_route route = Bgp.Route.has_community override_community route

let lookup overrides =
  let trie =
    List.fold_left
      (fun m o -> Bgp.Ptrie.add o.prefix o.target m)
      Bgp.Ptrie.empty overrides
  in
  fun prefix -> Bgp.Ptrie.find prefix trie

let level_of overrides =
  let trie =
    List.fold_left
      (fun m o -> Bgp.Ptrie.add o.prefix o.preference_level m)
      Bgp.Ptrie.empty overrides
  in
  fun prefix -> Bgp.Ptrie.find prefix trie

let equal a b =
  Bgp.Prefix.equal a.prefix b.prefix && target_peer_id a = target_peer_id b

let pp fmt t =
  Format.fprintf fmt "override{%a -> peer%d (iface %d -> %d, pref#%d, %a)}"
    Bgp.Prefix.pp t.prefix (target_peer_id t) t.from_iface t.to_iface
    t.preference_level Ef_util.Units.pp_rate t.rate_bps
