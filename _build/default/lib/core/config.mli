(** Controller configuration.

    The defaults mirror the published deployment: interfaces are
    considered overloaded at ~95 % projected utilization, detours release
    with a margin below that (so a prefix does not flap across the
    threshold), and the allocator moves whole BGP prefixes unless /24
    splitting is enabled. *)

type order =
  | Largest_first   (** move the biggest prefixes first: fewest overrides *)
  | Smallest_first  (** move the smallest: finer control, more overrides *)

type granularity =
  | Bgp_prefix      (** detour exactly the announced prefix *)
  | Split_24        (** split into /24s and move only as much as needed *)

type t = {
  overload_threshold : float;  (** fraction of capacity, e.g. 0.95 *)
  release_margin : float;      (** release when preferred util < threshold − margin *)
  min_hold_s : int;            (** an override persists at least this long *)
  order : order;
  iterative : bool;            (** re-project after every move (the paper's
                                   design); [false] reproduces the naive
                                   single-pass baseline for ablation A1 *)
  granularity : granularity;
  max_overrides_per_cycle : int option; (** safety valve; [None] = unbounded *)
  override_local_pref : int;   (** LOCAL_PREF of injected routes; must beat
                                   every policy tier *)
  guard : Guard.config;        (** blast-radius budgets applied to the
                                   allocator's output before enforcement *)
}

val default : t
val release_threshold : t -> float
(** [overload_threshold -. release_margin]. *)

val validate : t -> (unit, string) result
(** Sanity checks: thresholds in (0, 1], margin below threshold,
    override LOCAL_PREF above the policy tiers. *)

val pp : Format.formatter -> t -> unit
