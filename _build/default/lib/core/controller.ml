module Bgp = Ef_bgp
module Snapshot = Ef_collector.Snapshot

type cycle_stats = {
  time_s : int;
  total_bps : float;
  detoured_bps : float;
  preferred : Projection.t;
  enforced : Projection.t;
  allocator : Allocator.result;
  reconcile : Hysteresis.step_result;
  guard_dropped : Override.t list;
  guard_violations : Guard.violation list;
  overloaded_before : (Ef_netsim.Iface.t * float) list;
  overloaded_after : (Ef_netsim.Iface.t * float) list;
}

let log_src = Logs.Src.create "edge_fabric.controller" ~doc:"Edge Fabric controller"

module Log = (val Logs.src_log log_src)

type t = {
  name : string;
  config : Config.t;
  hysteresis : Hysteresis.t;
  mutable cycles : int;
}

let create ?(config = Config.default) ~name () =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Controller.create: bad config: " ^ msg));
  { name; config; hysteresis = Hysteresis.create config; cycles = 0 }

let name t = t.name
let config t = t.config
let active_overrides t = Hysteresis.active t.hysteresis
let cycles_run t = t.cycles

let overrides_lookup overrides =
  let trie =
    List.fold_left
      (fun m (o : Override.t) -> Bgp.Ptrie.add o.Override.prefix o.Override.target m)
      Bgp.Ptrie.empty overrides
  in
  fun prefix -> Bgp.Ptrie.find prefix trie

let cycle t snapshot =
  t.cycles <- t.cycles + 1;
  let alloc = Allocator.run ~config:t.config snapshot in
  let desired, guard_dropped =
    Guard.clamp t.config.Config.guard snapshot alloc.Allocator.overrides
  in
  if guard_dropped <> [] then
    Log.warn (fun m ->
        m "%s: guard dropped %d of %d proposed overrides" t.name
          (List.length guard_dropped)
          (List.length alloc.Allocator.overrides));
  let reconcile =
    Hysteresis.step t.hysteresis ~time_s:(Snapshot.time_s snapshot)
      ~desired ~preferred:alloc.Allocator.before
  in
  let enforced =
    Projection.project
      ~overrides:(overrides_lookup reconcile.Hysteresis.active)
      snapshot
  in
  let threshold = t.config.Config.overload_threshold in
  let guard_violations =
    Guard.audit t.config.Config.guard snapshot reconcile.Hysteresis.active
  in
  List.iter
    (fun v -> Log.warn (fun m -> m "%s: %a" t.name Guard.pp_violation v))
    guard_violations;
  {
    time_s = Snapshot.time_s snapshot;
    total_bps = Projection.total_bps enforced;
    detoured_bps = Projection.overridden_bps enforced;
    preferred = alloc.Allocator.before;
    enforced;
    allocator = alloc;
    reconcile;
    guard_dropped;
    guard_violations;
    overloaded_before = Projection.overloaded alloc.Allocator.before ~threshold;
    overloaded_after = Projection.overloaded enforced ~threshold;
  }

let bgp_updates t stats =
  let lp = t.config.Config.override_local_pref in
  let withdrawals =
    List.map
      (fun (o, _age) -> Override.to_withdrawal o)
      stats.reconcile.Hysteresis.removed
  in
  let announcements =
    List.map
      (fun o -> Override.to_announcement o ~local_pref:lp)
      (stats.reconcile.Hysteresis.added @ stats.reconcile.Hysteresis.retargeted)
  in
  withdrawals @ announcements

let detour_fraction stats =
  if stats.total_bps <= 0.0 then 0.0 else stats.detoured_bps /. stats.total_bps
