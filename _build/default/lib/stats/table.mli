(** Plain-text table rendering for the benchmark harness.

    The bench binary prints each reproduced paper table/figure as an
    aligned text table; this keeps that presentation logic out of the
    experiment drivers. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are padded with [""];
    longer rows raise [Invalid_argument]. *)

val add_rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['\t']
    into cells — convenient for numeric rows. *)

val row_count : t -> int

val render : t -> string
(** Render with a header rule and right-padded columns. *)

val print : ?title:string -> t -> unit
(** [print ~title t] writes the optional title, the table and a trailing
    newline to stdout. *)
