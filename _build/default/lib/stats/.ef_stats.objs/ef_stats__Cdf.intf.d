lib/stats/cdf.mli: Format
