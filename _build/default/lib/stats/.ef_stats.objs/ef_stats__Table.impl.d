lib/stats/table.ml: Array Buffer Format List String
