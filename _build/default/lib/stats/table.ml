type t = {
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t row =
  let width = List.length t.headers in
  let len = List.length row in
  if len > width then invalid_arg "Table.add_row: more cells than headers";
  let padded =
    if len = width then row else row @ List.init (width - len) (fun _ -> "")
  in
  t.rows <- padded :: t.rows

let add_rowf t fmt =
  Format.kasprintf (fun s -> add_row t (String.split_on_char '\t' s)) fmt

let row_count t = List.length t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  let rule_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf (String.make rule_width '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | None -> ()
  | Some s -> print_endline s);
  print_string (render t);
  print_newline ()
