lib/util/ewma.mli:
