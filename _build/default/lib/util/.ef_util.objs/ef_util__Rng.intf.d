lib/util/rng.mli:
