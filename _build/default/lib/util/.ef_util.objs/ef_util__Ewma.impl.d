lib/util/ewma.ml:
