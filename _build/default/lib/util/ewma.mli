(** Exponentially-weighted moving averages.

    The traffic collector smooths sampled per-prefix rates before handing
    them to the allocator, exactly so that one noisy sampling interval
    cannot trigger a burst of overrides. *)

type t

val create : alpha:float -> t
(** [create ~alpha] with [0 < alpha <= 1]; larger alpha follows new
    observations faster. *)

val create_init : alpha:float -> float -> t
(** Like {!create} but seeded with an initial value. *)

val observe : t -> float -> unit
(** Fold one observation in. The first observation initialises the
    average. *)

val value : t -> float
(** Current smoothed value; [0.] before any observation. *)

val initialized : t -> bool
val count : t -> int
(** Number of observations folded in so far. *)

val alpha : t -> float
