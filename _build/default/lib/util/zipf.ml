type t = {
  n : int;
  s : float;
  cumulative : float array; (* cumulative.(i) = P(rank <= i+1) *)
}

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let raw = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (raw.(i) /. total);
    cumulative.(i) <- !acc
  done;
  cumulative.(n - 1) <- 1.0;
  { n; s; cumulative }

let n t = t.n
let exponent t = t.s

let check_rank t rank =
  if rank < 1 || rank > t.n then invalid_arg "Zipf: rank out of range"

let weight t rank =
  check_rank t rank;
  1.0 /. (float_of_int rank ** t.s)

let probability t rank =
  check_rank t rank;
  if rank = 1 then t.cumulative.(0)
  else t.cumulative.(rank - 1) -. t.cumulative.(rank - 2)

let weights t = Array.init t.n (fun i -> probability t (i + 1))

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* first index with cumulative >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cumulative.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1) + 1

let top_share t k =
  let k = min k t.n in
  if k <= 0 then 0.0 else t.cumulative.(k - 1)
