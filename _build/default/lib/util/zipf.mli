(** Zipf-distributed sampling and weight generation.

    Per-prefix traffic volumes on real CDNs are heavily skewed; the paper's
    allocator behaviour depends on that skew (a handful of prefixes carry
    most of an interface's load, so moving few prefixes moves much
    traffic). This module provides the weights used by the demand model. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a Zipf distribution over ranks [1..n] with
    exponent [s] (typically 0.8–1.2 for CDN traffic). *)

val n : t -> int
val exponent : t -> float

val weight : t -> int -> float
(** [weight t rank] is the unnormalized weight [1 / rank^s]. Rank is
    1-based; out-of-range ranks raise [Invalid_argument]. *)

val probability : t -> int -> float
(** Normalized probability of the given 1-based rank. *)

val weights : t -> float array
(** All normalized probabilities, index 0 = rank 1. *)

val sample : t -> Rng.t -> int
(** Draw a 1-based rank with the distribution's probabilities, in O(log n)
    via binary search over the cumulative table. *)

val top_share : t -> int -> float
(** [top_share t k] is the fraction of total mass held by the top [k]
    ranks — handy for asserting skew in tests. *)
