let bps x = x
let kbps x = x *. 1e3
let mbps x = x *. 1e6
let gbps x = x *. 1e9
let tbps x = x *. 1e12
let to_gbps x = x /. 1e9
let to_mbps x = x /. 1e6

let pp_rate fmt r =
  let abs = Float.abs r in
  if abs >= 1e12 then Format.fprintf fmt "%.2f Tbps" (r /. 1e12)
  else if abs >= 1e9 then Format.fprintf fmt "%.2f Gbps" (r /. 1e9)
  else if abs >= 1e6 then Format.fprintf fmt "%.1f Mbps" (r /. 1e6)
  else if abs >= 1e3 then Format.fprintf fmt "%.1f Kbps" (r /. 1e3)
  else Format.fprintf fmt "%.0f bps" r

let rate_to_string r = Format.asprintf "%a" pp_rate r

let pp_percent fmt ratio = Format.fprintf fmt "%.1f%%" (ratio *. 100.0)

let seconds_per_day = 86_400

let pp_time_of_day fmt secs =
  let secs = ((secs mod seconds_per_day) + seconds_per_day) mod seconds_per_day in
  Format.fprintf fmt "%02d:%02d" (secs / 3600) (secs mod 3600 / 60)
