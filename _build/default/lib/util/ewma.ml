type t = {
  alpha : float;
  mutable value : float;
  mutable count : int;
}

let create ~alpha =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Ewma.create: alpha out of (0,1]";
  { alpha; value = 0.0; count = 0 }

let create_init ~alpha v =
  let t = create ~alpha in
  t.value <- v;
  t.count <- 1;
  t

let observe t x =
  if t.count = 0 then t.value <- x
  else t.value <- (t.alpha *. x) +. ((1.0 -. t.alpha) *. t.value);
  t.count <- t.count + 1

let value t = t.value
let initialized t = t.count > 0
let count t = t.count
let alpha t = t.alpha
