(** Traffic-rate units and pretty-printing.

    Rates flow through the whole system as bits per second (floats).
    Keeping conversions in one place avoids the classic Mbps/MBps/Gbps
    slip-ups in capacity arithmetic. *)

val bps : float -> float
val kbps : float -> float
val mbps : float -> float
val gbps : float -> float
val tbps : float -> float
(** Constructors: [gbps 10.] is [10e9] bits per second. *)

val to_gbps : float -> float
val to_mbps : float -> float

val pp_rate : Format.formatter -> float -> unit
(** Render with an adaptive unit: ["12.5 Gbps"], ["830 Mbps"], … *)

val rate_to_string : float -> string

val pp_percent : Format.formatter -> float -> unit
(** Render a ratio as a percentage: [pp_percent fmt 0.953] gives
    ["95.3%"]. *)

val seconds_per_day : int
val pp_time_of_day : Format.formatter -> int -> unit
(** Render seconds-since-midnight as ["HH:MM"]. *)
