(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that whole experiments are reproducible from a single seed.
    The generator is splitmix64: fast, splittable, and good enough for
    workload synthesis (not for cryptography). *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use one split per subsystem so adding draws to one subsystem does not
    perturb the others. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed sample (Box–Muller). *)

val pareto : t -> alpha:float -> xmin:float -> float
(** Pareto-distributed sample: heavy-tailed sizes. *)

val lognormal : t -> mu:float -> sigma:float -> float

val poisson : t -> lambda:float -> int
(** Poisson-distributed count (Knuth's method below λ=30, a rounded
    normal approximation above). Requires [lambda >= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] picks [min k (length arr)]
    distinct elements, order unspecified. *)
