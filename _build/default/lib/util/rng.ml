type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* land with max_int: Int64.to_int truncates to 63 bits and could leave
     the OCaml sign bit set *)
  let mask = Int64.to_int (Int64.shift_right_logical (bits64 t) 1) land max_int in
  mask mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (u /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let uniform_positive t =
  (* avoid exactly 0.0 for use under log *)
  let rec go () =
    let u = float t 1.0 in
    if u > 0.0 then u else go ()
  in
  go ()

let exponential t ~mean = -.mean *. log (uniform_positive t)

let gaussian t ~mu ~sigma =
  let u1 = uniform_positive t and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pareto t ~alpha ~xmin = xmin /. (uniform_positive t ** (1.0 /. alpha))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let poisson t ~lambda =
  if lambda < 0.0 then invalid_arg "Rng.poisson: negative lambda";
  if lambda = 0.0 then 0
  else if lambda < 30.0 then begin
    let limit = exp (-.lambda) in
    let rec go k p =
      let p = p *. float t 1.0 in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.0
  end
  else
    let x = gaussian t ~mu:lambda ~sigma:(sqrt lambda) in
    max 0 (int_of_float (Float.round x))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let sample_without_replacement t k arr =
  let n = Array.length arr in
  let k = min k n in
  let copy = Array.copy arr in
  (* partial Fisher–Yates: first [k] slots become the sample *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k
