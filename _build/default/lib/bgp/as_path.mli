(** AS_PATH attribute values.

    A path is a list of segments; ordered [Seq] segments carry the actual
    route, unordered [Set] segments result from aggregation. Path length
    for the decision process counts a whole [Set] as one hop (RFC 4271
    §9.1.2.2). *)

type segment =
  | Seq of Asn.t list
  | Set of Asn.t list

type t

val empty : t
val of_segments : segment list -> t
val segments : t -> segment list

val of_list : Asn.t list -> t
(** A single [Seq] segment; [of_list \[\]] is {!empty}. *)

val origin_of_list : Asn.t list -> t
(** Alias of {!of_list}, reads better at call sites building a route whose
    head is the neighbor and last element the origin. *)

val length : t -> int
(** Decision-process length: each [Seq] member counts 1, each [Set]
    counts 1 in total. *)

val prepend : Asn.t -> t -> t
(** Push an ASN on the front (what a speaker does at eBGP export),
    merging into a leading [Seq] segment when present. *)

val prepend_n : Asn.t -> int -> t -> t
(** [prepend_n asn n t] prepends [asn] [n] times (path prepending for
    traffic engineering). *)

val origin_as : t -> Asn.t option
(** The last ASN of the last [Seq] segment: the route's originator. *)

val first_as : t -> Asn.t option
(** The neighbor AS the route was heard from. *)

val mem : Asn.t -> t -> bool
(** Loop detection: is the ASN anywhere in the path? *)

val to_list : t -> Asn.t list
(** All ASNs in order, flattening sets. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
