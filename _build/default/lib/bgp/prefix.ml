type t = { network : Ipv4.t; length : int }

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of [0,32]";
  { network = Ipv4.apply_mask addr len; length = len }

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string_opt addr, int_of_string_opt len) with
      | Some addr, Some len when len >= 0 && len <= 32 -> Some (make addr len)
      | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let v = of_string
let network t = t.network
let length t = t.length
let to_string t = Printf.sprintf "%s/%d" (Ipv4.to_string t.network) t.length
let pp fmt t = Format.pp_print_string fmt (to_string t)

let compare a b =
  match Ipv4.compare a.network b.network with
  | 0 -> Int.compare a.length b.length
  | c -> c

let equal a b = a.length = b.length && Ipv4.equal a.network b.network
let hash t = (Ipv4.hash t.network * 33) + t.length
let mem addr t = Ipv4.equal (Ipv4.apply_mask addr t.length) t.network

let subsumes a b =
  a.length <= b.length && Ipv4.equal (Ipv4.apply_mask b.network a.length) a.network

let overlaps a b = subsumes a b || subsumes b a

let split t =
  if t.length >= 32 then invalid_arg "Prefix.split: /32 has no children";
  let len = t.length + 1 in
  let left = { network = t.network; length = len } in
  let right_bit = Int32.shift_left 1l (32 - len) in
  let right =
    { network = Ipv4.of_int32 (Int32.logor (Ipv4.to_int32 t.network) right_bit);
      length = len }
  in
  (left, right)

let subnets t len =
  if len < t.length then invalid_arg "Prefix.subnets: target shorter than prefix";
  if len > 32 then invalid_arg "Prefix.subnets: length out of range";
  let bits = len - t.length in
  if bits > 20 then invalid_arg "Prefix.subnets: expansion too large";
  let count = 1 lsl bits in
  let step = 1 lsl (32 - len) in
  List.init count (fun i ->
      { network = Ipv4.add t.network (i * step); length = len })

let size t = Float.pow 2.0 (float_of_int (32 - t.length))
let default = { network = Ipv4.any; length = 0 }
