type t = int

let max_asn = 0xFFFFFFFF

let of_int n =
  if n < 0 || n > max_asn then invalid_arg "Asn.of_int: out of range";
  n

let to_int n = n
let compare = Int.compare
let equal = Int.equal
let pp fmt n = Format.pp_print_int fmt n
let to_string = string_of_int

let is_private n =
  (n >= 64512 && n <= 65534) || (n >= 4200000000 && n <= 4294967294)

let is_reserved n = n = 0 || n = 65535 || n = max_asn
let as_trans = 23456
let fits_two_bytes n = n >= 0 && n <= 0xFFFF
