(** IPv4 prefixes (CIDR blocks).

    A prefix is a network address plus a length; the host bits are always
    zero (normalised on construction), so structural equality is semantic
    equality. *)

type t

val make : Ipv4.t -> int -> t
(** [make addr len] normalises [addr] by masking to [len] bits. Raises
    [Invalid_argument] if [len] is outside [0, 32]. *)

val v : string -> t
(** [v "10.1.2.0/24"] — shorthand for tests and literals. Raises
    [Invalid_argument] on malformed input. *)

val of_string : string -> t
val of_string_opt : string -> t option

val network : t -> Ipv4.t
val length : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Total order: by network address (unsigned), then by length. *)

val equal : t -> t -> bool
val hash : t -> int

val mem : Ipv4.t -> t -> bool
(** [mem addr t]: does [addr] fall inside [t]? *)

val subsumes : t -> t -> bool
(** [subsumes a b]: is [b] equal to or more specific than [a]? *)

val overlaps : t -> t -> bool

val split : t -> t * t
(** Split into the two half-length-plus-one children. Raises
    [Invalid_argument] on a /32. *)

val subnets : t -> int -> t list
(** [subnets t len] enumerates all sub-prefixes of [t] at length [len]
    (most-significant first). Raises [Invalid_argument] when
    [len < length t] or the expansion exceeds 2^20 prefixes. *)

val size : t -> float
(** Number of addresses covered, as a float (2^(32-len)). *)

val default : t
(** 0.0.0.0/0. *)
