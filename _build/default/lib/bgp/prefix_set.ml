let normalize prefixes =
  let sorted = List.sort_uniq Prefix.compare prefixes in
  (* ascending order puts covering prefixes before covered ones with the
     same network address; a linear scan with a "last kept" accumulator is
     not enough (coverage is not adjacent in this order), so filter
     against a trie of all candidates *)
  let trie = List.fold_left (fun t p -> Ptrie.add p () t) Ptrie.empty sorted in
  List.filter
    (fun p ->
      (* keep p unless a strictly shorter prefix in the set covers it *)
      not
        (List.exists
           (fun (q, ()) -> Prefix.length q < Prefix.length p)
           (Ptrie.matches (Prefix.network p) trie)))
    sorted

let parent p = Prefix.make (Prefix.network p) (Prefix.length p - 1)

let is_sibling_pair a b =
  Prefix.length a = Prefix.length b
  && Prefix.length a > 0
  && Prefix.equal (parent a) (parent b)
  && not (Prefix.equal a b)

let rec merge_pass prefixes =
  (* prefixes are normalized (sorted, disjoint); siblings are adjacent *)
  let rec go merged_any acc = function
    | a :: b :: rest when is_sibling_pair a b -> go true (parent a :: acc) rest
    | a :: rest -> go merged_any (a :: acc) rest
    | [] -> (merged_any, List.rev acc)
  in
  let merged_any, result = go false [] prefixes in
  if merged_any then merge_pass (normalize result) else result

let aggregate prefixes = merge_pass (normalize prefixes)

let covers prefixes addr = List.exists (Prefix.mem addr) prefixes

let same_space a b =
  let ca = aggregate a and cb = aggregate b in
  List.length ca = List.length cb && List.for_all2 Prefix.equal ca cb
