type t = int32

let make asn value =
  if asn < 0 || asn > 0xFFFF then invalid_arg "Community.make: asn out of range";
  if value < 0 || value > 0xFFFF then
    invalid_arg "Community.make: value out of range";
  Int32.of_int ((asn lsl 16) lor value)

let of_int32 x = x
let to_int32 x = x
let asn t = (Int32.to_int t lsr 16) land 0xFFFF
let value t = Int32.to_int t land 0xFFFF
let compare = Int32.unsigned_compare
let equal = Int32.equal
let pp fmt t = Format.fprintf fmt "%d:%d" (asn t) (value t)
let to_string t = Printf.sprintf "%d:%d" (asn t) (value t)

let of_string s =
  match String.split_on_char ':' s with
  | [ a; v ] -> (
      match (int_of_string_opt a, int_of_string_opt v) with
      | Some a, Some v -> make a v
      | _ -> invalid_arg (Printf.sprintf "Community.of_string: %S" s))
  | _ -> invalid_arg (Printf.sprintf "Community.of_string: %S" s)

let no_export = 0xFFFFFF01l
let no_advertise = 0xFFFFFF02l
let no_export_subconfed = 0xFFFFFF03l

let is_well_known t =
  equal t no_export || equal t no_advertise || equal t no_export_subconfed
