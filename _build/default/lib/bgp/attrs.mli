(** BGP path attributes.

    The subset that matters for egress engineering: ORIGIN, AS_PATH,
    NEXT_HOP, MED, LOCAL_PREF and COMMUNITIES. Values are immutable;
    modification goes through [with_*] so that policy actions compose. *)

type origin = Igp | Egp | Incomplete

val origin_rank : origin -> int
(** Decision order: IGP (0) < EGP (1) < INCOMPLETE (2), lower wins. *)

val origin_to_string : origin -> string
val pp_origin : Format.formatter -> origin -> unit

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;  (** set on ingestion by policy; eBGP routes arrive without it *)
  communities : Community.t list;  (** kept sorted and deduplicated *)
}

val make :
  ?origin:origin ->
  ?med:int option ->
  ?local_pref:int option ->
  ?communities:Community.t list ->
  as_path:As_path.t ->
  next_hop:Ipv4.t ->
  unit ->
  t

val with_local_pref : int -> t -> t
val with_med : int option -> t -> t
val add_community : Community.t -> t -> t
val remove_community : Community.t -> t -> t
val has_community : Community.t -> t -> bool
val prepend_path : Asn.t -> int -> t -> t

val effective_local_pref : t -> int
(** [local_pref] or the RFC default 100. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
