(** BGP community values (RFC 1997).

    A community is a 32-bit tag conventionally written [asn:value]. Edge
    Fabric uses communities to mark injected override routes and to let
    the policy engine classify routes by ingestion point. *)

type t

val make : int -> int -> t
(** [make asn value] with both halves in [0, 65535]. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32
val asn : t -> int
val value : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t
(** Parse ["asn:value"]. Raises [Invalid_argument] on malformed input. *)

(* Well-known communities, RFC 1997 §"Well-known Communities". *)

val no_export : t
val no_advertise : t
val no_export_subconfed : t
val is_well_known : t -> bool
