(** Routing information bases for one peering router.

    Holds an Adj-RIB-In per peer (routes exactly as received) and a
    Loc-RIB (post-policy candidates per prefix with their full decision
    ranking). Edge Fabric's collector reads the complete candidate sets —
    not just best paths — which is why the Loc-RIB keeps every accepted
    route and exposes {!ranked}. *)

type change = {
  prefix : Prefix.t;
  old_best : Route.t option;
  new_best : Route.t option;
}
(** Best-path transition produced by an update; [old_best = new_best]
    transitions are filtered out. *)

type t

val create : ?decision:Decision.config -> ?self_asn:Asn.t -> unit -> t
(** [self_asn], when given, enables the mandatory eBGP loop check: an
    announcement whose AS path contains our own ASN is treated as a
    withdrawal of that neighbor's route (RFC 4271 §9.1.2). *)

val add_peer : t -> Peer.t -> policy:Policy.t -> unit
(** Register a neighbor with its import policy. Re-adding an existing
    peer id raises [Invalid_argument]. *)

val peer_ids : t -> int list
val peer : t -> int -> Peer.t option

val apply_update : t -> peer_id:int -> Msg.update -> change list
(** Process one UPDATE from the given neighbor: withdrawals first, then
    announcements (through the peer's import policy). Unknown peer ids
    raise [Invalid_argument]. *)

val announce : t -> peer_id:int -> Prefix.t -> Attrs.t -> change list
(** Convenience single-prefix announcement. *)

val withdraw : t -> peer_id:int -> Prefix.t -> change list

val drop_peer : t -> peer_id:int -> change list
(** Session down: withdraw everything learned from the peer (the peer
    stays registered and may re-announce later). *)

val best : t -> Prefix.t -> Route.t option
val candidates : t -> Prefix.t -> Route.t list
(** Post-policy routes, unordered. *)

val ranked : t -> Prefix.t -> Route.t list
(** Decision-process preference order; head = best. *)

val lookup : t -> Ipv4.t -> (Prefix.t * Route.t) option
(** Longest-prefix match over best paths. *)

val adj_rib_in : t -> peer_id:int -> (Prefix.t * Attrs.t) list
(** Raw pre-policy routes from one neighbor. *)

val prefixes : t -> Prefix.t list
val prefix_count : t -> int
val route_count : t -> int
(** Total accepted candidate routes across prefixes. *)

val fold : (Prefix.t -> Route.t list -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over prefixes with their ranked candidates. *)
