(** The BGP decision process (RFC 4271 §9.1), over eBGP candidates.

    Edge Fabric needs more than "the best route": when an interface
    saturates, the allocator detours prefixes to their {e next-most
    preferred} route, so {!rank} returns the complete preference order.

    Steps applied, in order, by sequential elimination:
    + highest LOCAL_PREF;
    + shortest AS_PATH (sets count 1);
    + lowest ORIGIN (IGP < EGP < INCOMPLETE);
    + lowest MED — by default only among routes from the same neighbor
      AS (missing MED treated as 0, RFC-style determinism caveats
      handled by elimination rather than pairwise sort);
    + lowest neighbor router-id;
    + lowest peer id (the "lowest neighbor address" tiebreak).

    All candidates are assumed eBGP (a PoP's peering routers hear external
    routes only), so the eBGP-over-iBGP and IGP-metric steps do not
    apply. *)

type med_mode =
  | Same_neighbor_as  (** standard behaviour *)
  | Always            (** "always-compare-med" knob found on real routers *)

type config = { med_mode : med_mode }

val default_config : config

val best : ?config:config -> Route.t list -> Route.t option
(** The single best route, [None] on an empty candidate list. *)

val rank : ?config:config -> Route.t list -> Route.t list
(** All candidates in strictly decreasing preference; the head equals
    [best]. Computed by repeated elimination, so MED grouping is honoured
    at every level. *)

val compare_routes : ?config:config -> Route.t -> Route.t -> int
(** Pairwise comparison, negative when the first route is preferred.
    With [Same_neighbor_as] this relation can be non-transitive in the
    presence of MEDs (the well-known BGP wedgie); {!rank} is the
    authoritative order. *)

val preference_level : Route.t list -> Route.t -> int option
(** [preference_level candidates r] is the 0-based position of [r] in
    [rank candidates] — 0 for the best path, 1 for the first detour
    choice, … [None] if [r] is not among the candidates. *)
