type config = {
  withdraw_penalty : float;
  readvertise_penalty : float;
  attr_change_penalty : float;
  suppress_threshold : float;
  reuse_threshold : float;
  half_life_s : float;
  max_penalty : float;
}

let default_config =
  {
    withdraw_penalty = 1000.0;
    readvertise_penalty = 500.0;
    attr_change_penalty = 500.0;
    suppress_threshold = 2000.0;
    reuse_threshold = 750.0;
    half_life_s = 900.0;
    max_penalty = 16000.0;
  }

type event =
  | Withdrawal
  | Readvertisement
  | Attribute_change

type entry = {
  mutable penalty : float;
  mutable updated_at : int;
  mutable suppressed : bool;
}

module Key = struct
  type t = Prefix.t * int

  let equal (p1, i1) (p2, i2) = i1 = i2 && Prefix.equal p1 p2
  let hash (p, i) = (Prefix.hash p * 31) + i
end

module Ktbl = Hashtbl.Make (Key)

type t = {
  config : config;
  entries : entry Ktbl.t;
}

let create ?(config = default_config) () =
  if config.reuse_threshold >= config.suppress_threshold then
    invalid_arg "Damping.create: reuse must be below suppress";
  if config.half_life_s <= 0.0 then
    invalid_arg "Damping.create: half-life must be positive";
  { config; entries = Ktbl.create 256 }

let decayed config entry ~now_s =
  let dt = float_of_int (now_s - entry.updated_at) in
  if dt <= 0.0 then entry.penalty
  else entry.penalty *. (0.5 ** (dt /. config.half_life_s))

(* refresh the stored value and the suppression latch *)
let refresh t entry ~now_s =
  entry.penalty <- decayed t.config entry ~now_s;
  entry.updated_at <- now_s;
  if entry.suppressed && entry.penalty < t.config.reuse_threshold then
    entry.suppressed <- false;
  if (not entry.suppressed) && entry.penalty >= t.config.suppress_threshold then
    entry.suppressed <- true

let record t ~now_s ~prefix ~peer_id event =
  let key = (prefix, peer_id) in
  let entry =
    match Ktbl.find_opt t.entries key with
    | Some e -> e
    | None ->
        let e = { penalty = 0.0; updated_at = now_s; suppressed = false } in
        Ktbl.replace t.entries key e;
        e
  in
  refresh t entry ~now_s;
  let add =
    match event with
    | Withdrawal -> t.config.withdraw_penalty
    | Readvertisement -> t.config.readvertise_penalty
    | Attribute_change -> t.config.attr_change_penalty
  in
  entry.penalty <- Float.min t.config.max_penalty (entry.penalty +. add);
  if entry.penalty >= t.config.suppress_threshold then entry.suppressed <- true

let penalty t ~now_s ~prefix ~peer_id =
  match Ktbl.find_opt t.entries (prefix, peer_id) with
  | None -> 0.0
  | Some e -> decayed t.config e ~now_s

let is_suppressed t ~now_s ~prefix ~peer_id =
  match Ktbl.find_opt t.entries (prefix, peer_id) with
  | None -> false
  | Some e ->
      refresh t e ~now_s;
      e.suppressed

let reuse_time t ~now_s ~prefix ~peer_id =
  if not (is_suppressed t ~now_s ~prefix ~peer_id) then None
  else
    let p = penalty t ~now_s ~prefix ~peer_id in
    (* p * 0.5^(dt/half_life) = reuse  =>  dt = half_life * log2(p / reuse) *)
    let dt =
      t.config.half_life_s
      *. (Float.log (p /. t.config.reuse_threshold) /. Float.log 2.0)
    in
    Some (int_of_float (Float.ceil dt))

let suppressed_count t ~now_s =
  Ktbl.fold
    (fun _ e acc ->
      refresh t e ~now_s;
      if e.suppressed then acc + 1 else acc)
    t.entries 0

let sweep t ~now_s =
  let dead =
    Ktbl.fold
      (fun key e acc ->
        if decayed t.config e ~now_s < 1.0 then key :: acc else acc)
      t.entries []
  in
  List.iter (Ktbl.remove t.entries) dead
