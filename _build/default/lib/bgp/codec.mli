(** BGP-4 wire codec (RFC 4271, with RFC 6793 4-octet ASNs).

    Sans-IO: encoding produces a [string], decoding consumes one. The
    codec always advertises/assumes the 4-octet-AS capability, so AS_PATH
    segments carry 32-bit ASNs on the wire (what modern speakers exchange
    once the capability is negotiated). *)

type error =
  | Truncated                      (** need more bytes than provided *)
  | Bad_marker                     (** header marker is not all-ones *)
  | Bad_length of int              (** header length outside [19, 4096] *)
  | Unknown_msg_type of int
  | Malformed of string            (** anything structurally invalid *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val encode : Msg.t -> string
(** Serialise one message, header included. Raises [Invalid_argument] if
    the message exceeds the 4096-byte BGP maximum. *)

val decode : ?pos:int -> string -> (Msg.t * int, error) result
(** [decode ~pos buf] parses one message starting at [pos]; on success
    returns the message and the position just past it. [Truncated] means
    feed more bytes and retry — any other error is fatal for the
    session. *)

val decode_exn : string -> Msg.t
(** Decode a complete single-message buffer; raises [Failure] otherwise.
    For tests. *)

val encode_path_attributes : Attrs.t -> string
(** The bare path-attribute block of an UPDATE (ORIGIN/AS_PATH/NEXT_HOP/
    MED/LOCAL_PREF/COMMUNITIES) — the encoding MRT RIB entries embed. *)

val decode_path_attributes : string -> (Attrs.t, error) result
(** Inverse of {!encode_path_attributes}; requires the mandatory
    attributes to be present. *)

(** Incremental decoder for a TCP-like byte stream. *)
module Stream : sig
  type t

  val create : unit -> t
  val feed : t -> string -> unit
  (** Append received bytes. *)

  val next : t -> (Msg.t option, error) result
  (** [Ok None] = no complete message buffered yet; errors are sticky. *)

  val pending_bytes : t -> int
end
