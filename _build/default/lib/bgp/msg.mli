(** BGP message abstract syntax (RFC 4271 §4).

    The controller injects overrides as genuine UPDATE messages and the
    collector parses genuine UPDATEs out of BMP feeds, so the message
    types are first-class values with a real wire codec ({!Codec}). *)

type capability =
  | Multiprotocol of { afi : int; safi : int }  (** code 1 *)
  | Route_refresh                               (** code 2 *)
  | Four_octet_as of Asn.t                      (** code 65 *)
  | Unknown_capability of { code : int; data : string }

type open_msg = {
  version : int;            (** always 4 *)
  my_as : Asn.t;            (** the real ASN; the codec emits AS_TRANS in
                                the 2-byte field when it does not fit *)
  hold_time : int;          (** seconds; 0 disables keepalives *)
  bgp_id : Ipv4.t;
  capabilities : capability list;
}

type update = {
  withdrawn : Prefix.t list;
  attrs : Attrs.t option;   (** required when [nlri] is non-empty *)
  nlri : Prefix.t list;
}

(** Notification error codes (RFC 4271 §6). *)
type notif_code =
  | Message_header_error of int
  | Open_message_error of int
  | Update_message_error of int
  | Hold_timer_expired
  | Fsm_error
  | Cease of int

type notification = {
  code : notif_code;
  data : string;
}

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive
  | Route_refresh of { afi : int; safi : int }
      (** RFC 2918: ask the peer to resend its Adj-RIB-Out — used after a
          policy change instead of bouncing the session *)

val make_open :
  ?version:int ->
  ?hold_time:int ->
  ?capabilities:capability list ->
  asn:Asn.t ->
  bgp_id:Ipv4.t ->
  unit ->
  t
(** Convenience constructor; defaults: version 4, hold 90 s, capabilities
    [\[Four_octet_as asn\]]. *)

val make_update :
  ?withdrawn:Prefix.t list -> ?attrs:Attrs.t -> ?nlri:Prefix.t list -> unit -> t

val keepalive : t
val cease : ?subcode:int -> ?data:string -> unit -> t

val kind_to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
