type effect_ =
  | Write of { peer_id : int; data : string }
  | Set_timer of { peer_id : int; timer : Fsm.timer; seconds : int }
  | Clear_timer of { peer_id : int; timer : Fsm.timer }
  | Request_connect of { peer_id : int }
  | Drop_connection of { peer_id : int }
  | Rib_changed of Rib.change list
  | Peer_up of { peer_id : int }
  | Peer_down of { peer_id : int; reason : string }

type session = {
  peer : Peer.t;
  fsm : Fsm.t;
  stream : Codec.Stream.t;
  export_policy : Policy.t;
}

type t = {
  asn : Asn.t;
  router_id : Ipv4.t;
  rib : Rib.t;
  sessions : (int, session) Hashtbl.t;
  mutable originated : unit Ptrie.t;
}

let create ?decision ~asn ~router_id () =
  {
    asn;
    router_id;
    rib = Rib.create ?decision ~self_asn:asn ();
    sessions = Hashtbl.create 16;
    originated = Ptrie.empty;
  }

let asn t = t.asn
let router_id t = t.router_id
let rib t = t.rib

let add_session ?config ?(export_policy = Policy.accept_all) t peer ~policy =
  let id = Peer.id peer in
  if Hashtbl.mem t.sessions id then
    invalid_arg (Printf.sprintf "Speaker.add_session: duplicate peer id %d" id);
  let config =
    match config with
    | Some c -> c
    | None ->
        {
          (Fsm.default_config ~local_asn:t.asn ~local_id:t.router_id) with
          Fsm.remote_asn = Some (Peer.asn peer);
        }
  in
  Rib.add_peer t.rib peer ~policy;
  Hashtbl.replace t.sessions id
    { peer; fsm = Fsm.create config; stream = Codec.Stream.create (); export_policy }

(* --- export side (adj-RIB-out) -------------------------------------- *)

(* eBGP export: strip the non-transitive attributes, prepend our ASN, and
   rewrite the next hop to ourselves *)
let exported_attrs t (attrs : Attrs.t) =
  {
    attrs with
    Attrs.local_pref = None;
    med = None;
    as_path = As_path.prepend t.asn attrs.Attrs.as_path;
    next_hop = t.router_id;
  }

(* base attributes of a locally-originated prefix: the export step
   prepends our ASN, so the base path is empty *)
let originated_attrs t =
  Attrs.make ~origin:Attrs.Igp ~as_path:As_path.empty ~next_hop:t.router_id ()

(* announcement (or None if the session's export policy filters it) of
   [route] towards session [s] *)
let export_announcement t s route =
  match Policy.apply s.export_policy route with
  | None -> None
  | Some filtered ->
      Some
        (Write
           {
             peer_id = Peer.id s.peer;
             data =
               Codec.encode
                 (Msg.Update
                    {
                      Msg.withdrawn = [];
                      attrs = Some (exported_attrs t (Route.attrs filtered));
                      nlri = [ Route.prefix filtered ];
                    });
           })

let export_withdrawal s prefix =
  Write
    {
      peer_id = Peer.id s.peer;
      data =
        Codec.encode
          (Msg.Update { Msg.withdrawn = [ prefix ]; attrs = None; nlri = [] });
    }

(* best-path changes fan out to every established session except the one
   they came from (split horizon) and the one carrying the new best *)
let exports_for_changes t ~from_peer changes =
  Hashtbl.fold
    (fun id s acc ->
      if id = from_peer || Fsm.state s.fsm <> Fsm.Established then acc
      else
        List.filter_map
          (fun (change : Rib.change) ->
            match change.Rib.new_best with
            | Some best when Route.peer_id best = id -> None
            | Some best -> export_announcement t s best
            | None -> (
                match change.Rib.old_best with
                | Some old when Route.peer_id old = id -> None
                | Some _ -> Some (export_withdrawal s change.Rib.prefix)
                | None -> None))
          changes
        @ acc)
    t.sessions []

(* a freshly-Established session receives the full table: originated
   prefixes plus every best path not learned from it *)
let full_table_dump t s =
  let peer_id = Peer.id s.peer in
  let originated =
    List.filter_map
      (fun (prefix, ()) ->
        let pseudo =
          Route.make ~prefix ~attrs:(originated_attrs t) ~peer:s.peer
        in
        match Policy.apply s.export_policy pseudo with
        | None -> None
        | Some _ ->
            Some
              (Write
                 {
                   peer_id;
                   data =
                     Codec.encode
                       (Msg.Update
                          {
                            Msg.withdrawn = [];
                            attrs = Some (exported_attrs t (originated_attrs t));
                            nlri = [ prefix ];
                          });
                 }))
      (Ptrie.to_list t.originated)
  in
  let learned =
    Rib.fold
      (fun _prefix ranked acc ->
        match ranked with
        | [] -> acc
        | best :: _ when Route.peer_id best = peer_id -> acc
        | best :: _ -> (
            match export_announcement t s best with
            | Some w -> w :: acc
            | None -> acc))
      t.rib []
  in
  originated @ learned

let originate t prefix =
  t.originated <- Ptrie.add prefix () t.originated;
  Hashtbl.fold
    (fun _ s acc ->
      if Fsm.state s.fsm <> Fsm.Established then acc
      else
        let pseudo = Route.make ~prefix ~attrs:(originated_attrs t) ~peer:s.peer in
        match Policy.apply s.export_policy pseudo with
        | None -> acc
        | Some _ ->
            Write
              {
                peer_id = Peer.id s.peer;
                data =
                  Codec.encode
                    (Msg.Update
                       {
                         Msg.withdrawn = [];
                         attrs = Some (exported_attrs t (originated_attrs t));
                         nlri = [ prefix ];
                       });
              }
            :: acc)
    t.sessions []

let originated_prefixes t = List.map fst (Ptrie.to_list t.originated)

let session t id =
  match Hashtbl.find_opt t.sessions id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Speaker: unknown peer id %d" id)

let session_state t ~peer_id =
  Option.map (fun s -> Fsm.state s.fsm) (Hashtbl.find_opt t.sessions peer_id)

(* Translate FSM actions into speaker effects, applying UPDATEs to the
   RIB and flushing learned routes on session loss. *)
let run_actions t s actions =
  let peer_id = Peer.id s.peer in
  List.concat_map
    (fun action ->
      match action with
      | Fsm.Connect_tcp -> [ Request_connect { peer_id } ]
      | Fsm.Close_tcp -> [ Drop_connection { peer_id } ]
      | Fsm.Send msg -> [ Write { peer_id; data = Codec.encode msg } ]
      | Fsm.Start_timer (timer, seconds) -> [ Set_timer { peer_id; timer; seconds } ]
      | Fsm.Stop_timer timer -> [ Clear_timer { peer_id; timer } ]
      | Fsm.Session_up -> Peer_up { peer_id } :: full_table_dump t s
      | Fsm.Session_down reason ->
          let changes = Rib.drop_peer t.rib ~peer_id in
          (Peer_down { peer_id; reason }
           :: (if changes = [] then [] else [ Rib_changed changes ]))
          @ exports_for_changes t ~from_peer:peer_id changes
      | Fsm.Refresh_requested _ -> full_table_dump t s
      | Fsm.Deliver_update u ->
          let changes = Rib.apply_update t.rib ~peer_id u in
          (if changes = [] then [] else [ Rib_changed changes ])
          @ exports_for_changes t ~from_peer:peer_id changes)
    actions

let feed_event t ~peer_id event =
  let s = session t peer_id in
  run_actions t s (Fsm.handle s.fsm event)

let start t ~peer_id = feed_event t ~peer_id Fsm.Manual_start
let stop t ~peer_id = feed_event t ~peer_id Fsm.Manual_stop
let tcp_connected t ~peer_id = feed_event t ~peer_id Fsm.Tcp_connected
let tcp_failed t ~peer_id = feed_event t ~peer_id Fsm.Tcp_failed
let tcp_closed t ~peer_id = feed_event t ~peer_id Fsm.Tcp_closed
let timer_expired t ~peer_id timer = feed_event t ~peer_id (Fsm.Timer_expired timer)

let receive_bytes t ~peer_id data =
  let s = session t peer_id in
  Codec.Stream.feed s.stream data;
  let rec drain acc =
    match Codec.Stream.next s.stream with
    | Ok None -> acc
    | Ok (Some msg) -> drain (acc @ feed_event t ~peer_id (Fsm.Received msg))
    | Error e ->
        (* a framing/parse error is fatal for the session *)
        let notif =
          Msg.Notification
            { code = Msg.Message_header_error 0; data = Codec.error_to_string e }
        in
        acc
        @ [ Write { peer_id; data = Codec.encode notif } ]
        @ feed_event t ~peer_id Fsm.Tcp_closed
  in
  drain []

let send_update t ~peer_id update =
  let s = session t peer_id in
  if Fsm.state s.fsm = Fsm.Established then
    [ Write { peer_id; data = Codec.encode (Msg.Update update) } ]
  else []

let request_refresh t ~peer_id =
  let s = session t peer_id in
  if Fsm.state s.fsm = Fsm.Established then
    [
      Write
        { peer_id; data = Codec.encode (Msg.Route_refresh { afi = 1; safi = 1 }) };
    ]
  else []

let established_peers t =
  Hashtbl.fold
    (fun id s acc -> if Fsm.state s.fsm = Fsm.Established then id :: acc else acc)
    t.sessions []
  |> List.sort compare
