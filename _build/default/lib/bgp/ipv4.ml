type t = int32

let of_int32 x = x
let to_int32 x = x

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets" in
  check a;
  check b;
  check c;
  check d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && String.length x <= 3 -> Some v
        | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string t =
  let u = Int32.to_int t land 0xFFFFFFFF in
  Printf.sprintf "%d.%d.%d.%d"
    ((u lsr 24) land 0xFF)
    ((u lsr 16) land 0xFF)
    ((u lsr 8) land 0xFF)
    (u land 0xFF)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let compare a b =
  (* unsigned comparison via flipping the sign bit *)
  Int32.compare (Int32.logxor a Int32.min_int) (Int32.logxor b Int32.min_int)

let equal = Int32.equal
let hash t = Int32.to_int t land max_int
let succ t = Int32.add t 1l
let add t n = Int32.add t (Int32.of_int n)

let mask len =
  if len < 0 || len > 32 then invalid_arg "Ipv4.mask";
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let apply_mask t len = Int32.logand t (mask len)

let bit t i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit";
  Int32.logand (Int32.shift_right_logical t (31 - i)) 1l = 1l

let broadcast = -1l
let any = 0l
