type state =
  | Idle
  | Connect
  | Active
  | Open_sent
  | Open_confirm
  | Established

let state_to_string = function
  | Idle -> "Idle"
  | Connect -> "Connect"
  | Active -> "Active"
  | Open_sent -> "OpenSent"
  | Open_confirm -> "OpenConfirm"
  | Established -> "Established"

let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)

type timer =
  | Connect_retry_timer
  | Hold_timer
  | Keepalive_timer

let timer_to_string = function
  | Connect_retry_timer -> "connect-retry"
  | Hold_timer -> "hold"
  | Keepalive_timer -> "keepalive"

type event =
  | Manual_start
  | Manual_stop
  | Tcp_connected
  | Tcp_failed
  | Tcp_closed
  | Timer_expired of timer
  | Received of Msg.t

type action =
  | Connect_tcp
  | Close_tcp
  | Send of Msg.t
  | Deliver_update of Msg.update
  | Refresh_requested of { afi : int; safi : int }
  | Start_timer of timer * int
  | Stop_timer of timer
  | Session_up
  | Session_down of string

type config = {
  local_asn : Asn.t;
  local_id : Ipv4.t;
  hold_time : int;
  connect_retry : int;
  remote_asn : Asn.t option;
}

let default_config ~local_asn ~local_id =
  { local_asn; local_id; hold_time = 90; connect_retry = 30; remote_asn = None }

type t = {
  config : config;
  mutable state : state;
  mutable peer_open : Msg.open_msg option;
  mutable hold : int option;
}

let create config = { config; state = Idle; peer_open = None; hold = None }
let state t = t.state
let negotiated_hold_time t = t.hold
let peer_open t = t.peer_open

let local_open t =
  Msg.make_open ~hold_time:t.config.hold_time ~asn:t.config.local_asn
    ~bgp_id:t.config.local_id ()

let all_timers = [ Connect_retry_timer; Hold_timer; Keepalive_timer ]

let teardown t reason ~notify =
  let was_established = t.state = Established in
  t.state <- Idle;
  t.peer_open <- None;
  t.hold <- None;
  List.concat
    [
      (match notify with
      | None -> []
      | Some msg -> [ Send msg ]);
      [ Close_tcp ];
      List.map (fun timer -> Stop_timer timer) all_timers;
      (if was_established then [ Session_down reason ] else []);
    ]

(* Hold/keepalive arming after negotiation; hold 0 disables both. *)
let arm_session_timers t =
  match t.hold with
  | Some hold when hold > 0 ->
      [ Start_timer (Hold_timer, hold); Start_timer (Keepalive_timer, hold / 3) ]
  | Some _ | None -> []

let validate_open t (o : Msg.open_msg) =
  if o.Msg.version <> 4 then Error "bad version"
  else
    match t.config.remote_asn with
    | Some expected when not (Asn.equal expected o.Msg.my_as) ->
        Error "unexpected peer ASN"
    | Some _ | None -> Ok ()

let process_open t (o : Msg.open_msg) =
  match validate_open t o with
  | Error reason ->
      teardown t reason
        ~notify:(Some (Msg.Notification { code = Msg.Open_message_error 2; data = "" }))
  | Ok () ->
      t.peer_open <- Some o;
      t.hold <- Some (min t.config.hold_time o.Msg.hold_time);
      t.state <- Open_confirm;
      (Send Msg.Keepalive :: Stop_timer Connect_retry_timer :: arm_session_timers t)

let handle t event =
  match (t.state, event) with
  (* --- Idle ------------------------------------------------------- *)
  | Idle, Manual_start ->
      t.state <- Connect;
      [ Connect_tcp; Start_timer (Connect_retry_timer, t.config.connect_retry) ]
  | Idle, _ -> []
  (* --- Connect ---------------------------------------------------- *)
  | Connect, Tcp_connected ->
      t.state <- Open_sent;
      (* RFC: a large hold timer while waiting for the peer's OPEN *)
      [ Send (local_open t); Start_timer (Hold_timer, 240) ]
  | Connect, Tcp_failed ->
      t.state <- Active;
      [ Start_timer (Connect_retry_timer, t.config.connect_retry) ]
  | Connect, Timer_expired Connect_retry_timer ->
      [ Connect_tcp; Start_timer (Connect_retry_timer, t.config.connect_retry) ]
  | Connect, Manual_stop -> teardown t "manual stop" ~notify:None
  | Connect, (Tcp_closed | Timer_expired _ | Received _ | Manual_start) -> []
  (* --- Active ----------------------------------------------------- *)
  | Active, Timer_expired Connect_retry_timer ->
      t.state <- Connect;
      [ Connect_tcp; Start_timer (Connect_retry_timer, t.config.connect_retry) ]
  | Active, Tcp_connected ->
      t.state <- Open_sent;
      [ Send (local_open t); Start_timer (Hold_timer, 240) ]
  | Active, Manual_stop -> teardown t "manual stop" ~notify:None
  | Active, (Tcp_failed | Tcp_closed | Timer_expired _ | Received _ | Manual_start)
    -> []
  (* --- OpenSent --------------------------------------------------- *)
  | Open_sent, Received (Msg.Open o) -> process_open t o
  | Open_sent, Received (Msg.Notification n) ->
      teardown t (Format.asprintf "%a" Msg.pp (Msg.Notification n)) ~notify:None
  | Open_sent, Received (Msg.Keepalive | Msg.Update _ | Msg.Route_refresh _) ->
      teardown t "message before OPEN"
        ~notify:(Some (Msg.Notification { code = Msg.Fsm_error; data = "" }))
  | Open_sent, (Tcp_closed | Tcp_failed) ->
      t.state <- Active;
      [ Start_timer (Connect_retry_timer, t.config.connect_retry) ]
  | Open_sent, Timer_expired Hold_timer ->
      teardown t "hold timer expired"
        ~notify:(Some (Msg.Notification { code = Msg.Hold_timer_expired; data = "" }))
  | Open_sent, Manual_stop ->
      teardown t "manual stop" ~notify:(Some (Msg.cease ()))
  | Open_sent, (Timer_expired _ | Manual_start | Tcp_connected) -> []
  (* --- OpenConfirm ------------------------------------------------ *)
  | Open_confirm, Received Msg.Keepalive ->
      t.state <- Established;
      Session_up
      :: (match t.hold with
         | Some hold when hold > 0 -> [ Start_timer (Hold_timer, hold) ]
         | Some _ | None -> [])
  | Open_confirm, Received (Msg.Notification _) ->
      teardown t "notification in OpenConfirm" ~notify:None
  | Open_confirm, Received (Msg.Open _ | Msg.Update _ | Msg.Route_refresh _) ->
      teardown t "unexpected message in OpenConfirm"
        ~notify:(Some (Msg.Notification { code = Msg.Fsm_error; data = "" }))
  | Open_confirm, Timer_expired Hold_timer ->
      teardown t "hold timer expired"
        ~notify:(Some (Msg.Notification { code = Msg.Hold_timer_expired; data = "" }))
  | Open_confirm, Timer_expired Keepalive_timer ->
      Send Msg.Keepalive
      :: (match t.hold with
         | Some hold when hold > 0 -> [ Start_timer (Keepalive_timer, hold / 3) ]
         | Some _ | None -> [])
  | Open_confirm, (Tcp_closed | Tcp_failed) -> teardown t "transport closed" ~notify:None
  | Open_confirm, Manual_stop ->
      teardown t "manual stop" ~notify:(Some (Msg.cease ()))
  | Open_confirm, (Timer_expired _ | Manual_start | Tcp_connected) -> []
  (* --- Established ------------------------------------------------ *)
  | Established, Received (Msg.Update u) ->
      Deliver_update u
      :: (match t.hold with
         | Some hold when hold > 0 -> [ Start_timer (Hold_timer, hold) ]
         | Some _ | None -> [])
  | Established, Received Msg.Keepalive -> (
      match t.hold with
      | Some hold when hold > 0 -> [ Start_timer (Hold_timer, hold) ]
      | Some _ | None -> [])
  | Established, Received (Msg.Notification n) ->
      teardown t (Format.asprintf "%a" Msg.pp (Msg.Notification n)) ~notify:None
  | Established, Received (Msg.Route_refresh { afi; safi }) ->
      Refresh_requested { afi; safi }
      :: (match t.hold with
         | Some hold when hold > 0 -> [ Start_timer (Hold_timer, hold) ]
         | Some _ | None -> [])
  | Established, Received (Msg.Open _) ->
      teardown t "OPEN in Established"
        ~notify:(Some (Msg.Notification { code = Msg.Fsm_error; data = "" }))
  | Established, Timer_expired Hold_timer ->
      teardown t "hold timer expired"
        ~notify:(Some (Msg.Notification { code = Msg.Hold_timer_expired; data = "" }))
  | Established, Timer_expired Keepalive_timer ->
      Send Msg.Keepalive
      :: (match t.hold with
         | Some hold when hold > 0 -> [ Start_timer (Keepalive_timer, hold / 3) ]
         | Some _ | None -> [])
  | Established, (Tcp_closed | Tcp_failed) ->
      teardown t "transport closed" ~notify:None
  | Established, Manual_stop ->
      teardown t "manual stop" ~notify:(Some (Msg.cease ()))
  | Established, (Timer_expired Connect_retry_timer | Manual_start | Tcp_connected)
    -> []
