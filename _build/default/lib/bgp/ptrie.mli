(** Binary tries keyed by IPv4 prefix.

    The routing tables (Adj-RIB-In, Loc-RIB, traffic maps) all need exact
    prefix lookup plus longest-prefix match; this persistent trie provides
    both in O(prefix length). Persistence keeps RIB snapshots for the
    collector free: the controller can hold an old version while the
    speaker keeps updating. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** Insert or replace the binding for the exact prefix. *)

val remove : Prefix.t -> 'a t -> 'a t
(** Remove the exact binding; the trie is unchanged if absent. *)

val find : Prefix.t -> 'a t -> 'a option
(** Exact-prefix lookup. *)

val mem : Prefix.t -> 'a t -> bool

val update : Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t
(** Insert/modify/delete through one function, as [Map.update]. *)

val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** The most-specific prefix containing the address, if any. *)

val matches : Ipv4.t -> 'a t -> (Prefix.t * 'a) list
(** All prefixes containing the address, most specific first. *)

val covered : Prefix.t -> 'a t -> (Prefix.t * 'a) list
(** All bindings whose prefix is equal to or more specific than the
    argument, in ascending prefix order. *)

val cardinal : 'a t -> int
val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Ascending prefix order. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : (Prefix.t -> 'a -> bool) -> 'a t -> 'a t
val to_list : 'a t -> (Prefix.t * 'a) list
val of_list : (Prefix.t * 'a) list -> 'a t
val keys : 'a t -> Prefix.t list
val union : ('a -> 'a -> 'a) -> 'a t -> 'a t -> 'a t
(** [union f a b] keeps all bindings, resolving duplicates with [f]. *)
