(** Autonomous-system numbers.

    4-byte ASNs (RFC 6793) represented as plain ints, with the range
    checks and reserved-value helpers the codec and generators need. *)

type t = int

val of_int : int -> t
(** Raises [Invalid_argument] outside [0, 2^32-1]. *)

val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Plain ("64496") or asdot ("1.10") not used: plain decimal only. *)

val to_string : t -> string

val is_private : t -> bool
(** 64512–65534 and 4200000000–4294967294 (RFC 6996). *)

val is_reserved : t -> bool
(** 0 and 65535 and 4294967295. *)

val as_trans : t
(** 23456, the 2-byte stand-in for 4-byte ASNs (RFC 6793). *)

val fits_two_bytes : t -> bool
