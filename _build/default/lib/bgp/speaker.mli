(** A complete sans-IO BGP speaker: one peering router.

    Combines per-session {!Fsm} instances, the {!Codec} byte-stream
    decoder, and a shared {!Rib}. The host environment (the simulator, or
    real sockets in principle) pushes transport events and received bytes
    in, and executes the returned {!effect_}s: bytes to write, timers to
    arm, RIB changes to react to.

    The speaker is a {e router}, not just a sink: it originates local
    prefixes, keeps an implicit adj-RIB-out (best path per neighbor,
    after that session's export policy), prepends its ASN and rewrites
    the next hop on export, applies split-horizon (never re-advertising
    a route to the neighbor it came from), drops looped paths, and dumps
    the full table to sessions as they establish — so chains of speakers
    propagate reachability like a real topology.

    In the Edge Fabric deployment model every PoP peering router is one of
    these; the controller itself holds a session to each peering router
    and injects override routes as ordinary UPDATE messages that win the
    decision process on LOCAL_PREF. *)

type effect_ =
  | Write of { peer_id : int; data : string }
      (** bytes to put on the wire towards this neighbor *)
  | Set_timer of { peer_id : int; timer : Fsm.timer; seconds : int }
  | Clear_timer of { peer_id : int; timer : Fsm.timer }
  | Request_connect of { peer_id : int }
      (** the FSM wants an outbound TCP connection *)
  | Drop_connection of { peer_id : int }
  | Rib_changed of Rib.change list
  | Peer_up of { peer_id : int }
  | Peer_down of { peer_id : int; reason : string }

type t

val create :
  ?decision:Decision.config -> asn:Asn.t -> router_id:Ipv4.t -> unit -> t

val asn : t -> Asn.t
val router_id : t -> Ipv4.t
val rib : t -> Rib.t

val add_session :
  ?config:Fsm.config ->
  ?export_policy:Policy.t ->
  t ->
  Peer.t ->
  policy:Policy.t ->
  unit
(** Register a neighbor. The default FSM config uses the speaker's ASN
    and id, expects the peer's ASN, 90 s hold. [export_policy] filters
    what this neighbor is sent (default: everything). *)

val session_state : t -> peer_id:int -> Fsm.state option

val start : t -> peer_id:int -> effect_ list
(** ManualStart: begin connecting. *)

val stop : t -> peer_id:int -> effect_ list

val tcp_connected : t -> peer_id:int -> effect_ list
val tcp_failed : t -> peer_id:int -> effect_ list
val tcp_closed : t -> peer_id:int -> effect_ list
val timer_expired : t -> peer_id:int -> Fsm.timer -> effect_ list

val receive_bytes : t -> peer_id:int -> string -> effect_ list
(** Feed bytes read from the neighbor's transport; decodes as many
    complete messages as are buffered and advances the FSM with each.
    A codec error tears the session down with a NOTIFICATION. *)

val send_update : t -> peer_id:int -> Msg.update -> effect_ list
(** Originate an UPDATE towards an Established neighbor (returns [] and
    does nothing otherwise). Used by the controller side of a session to
    inject or withdraw override routes. *)

val originate : t -> Prefix.t -> effect_ list
(** Originate a locally-owned prefix: announced to every Established
    neighbor now (path = our ASN, next hop = our router id) and included
    in the full-table dump sent to sessions that come up later. *)

val originated_prefixes : t -> Prefix.t list

val request_refresh : t -> peer_id:int -> effect_ list
(** Send a ROUTE-REFRESH (IPv4 unicast) to an Established neighbor; the
    neighbor replies by resending its Adj-RIB-Out (this speaker answers
    incoming refreshes the same way). *)

val established_peers : t -> int list
