type change = {
  prefix : Prefix.t;
  old_best : Route.t option;
  new_best : Route.t option;
}

type peer_state = {
  peer : Peer.t;
  policy : Policy.t;
  mutable adj_in : Attrs.t Ptrie.t;
}

type entry = {
  ranked : Route.t list; (* decision order, head = best *)
}

type t = {
  decision : Decision.config;
  self_asn : Asn.t option;
  peers : (int, peer_state) Hashtbl.t;
  mutable loc : entry Ptrie.t;
}

let create ?(decision = Decision.default_config) ?self_asn () =
  { decision; self_asn; peers = Hashtbl.create 16; loc = Ptrie.empty }

let add_peer t peer ~policy =
  let id = Peer.id peer in
  if Hashtbl.mem t.peers id then
    invalid_arg (Printf.sprintf "Rib.add_peer: duplicate peer id %d" id);
  Hashtbl.replace t.peers id { peer; policy; adj_in = Ptrie.empty }

let peer_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.peers [] |> List.sort compare
let peer t id = Option.map (fun ps -> ps.peer) (Hashtbl.find_opt t.peers id)

let peer_state t id =
  match Hashtbl.find_opt t.peers id with
  | Some ps -> ps
  | None -> invalid_arg (Printf.sprintf "Rib: unknown peer id %d" id)

let best_of_entry = function
  | None -> None
  | Some e -> (
      match e.ranked with
      | [] -> None
      | r :: _ -> Some r)

(* Replace (or remove, when [route = None]) the candidate from [peer_id]
   for [prefix], re-ranking the entry. Returns the best-path change. *)
let set_candidate t ~peer_id prefix route =
  let old_entry = Ptrie.find prefix t.loc in
  let others =
    match old_entry with
    | None -> []
    | Some e -> List.filter (fun r -> Route.peer_id r <> peer_id) e.ranked
  in
  let candidates =
    match route with
    | None -> others
    | Some r -> r :: others
  in
  let ranked = Decision.rank ~config:t.decision candidates in
  (match ranked with
  | [] -> t.loc <- Ptrie.remove prefix t.loc
  | _ -> t.loc <- Ptrie.add prefix { ranked } t.loc);
  let old_best = best_of_entry old_entry in
  let new_best =
    match ranked with
    | [] -> None
    | r :: _ -> Some r
  in
  match (old_best, new_best) with
  | None, None -> None
  | Some a, Some b when Route.equal a b -> None
  | _ -> Some { prefix; old_best; new_best }

let apply_withdraw t ps prefix =
  if Ptrie.mem prefix ps.adj_in then begin
    ps.adj_in <- Ptrie.remove prefix ps.adj_in;
    set_candidate t ~peer_id:(Peer.id ps.peer) prefix None
  end
  else None

let looped t attrs =
  match t.self_asn with
  | None -> false
  | Some asn -> As_path.mem asn attrs.Attrs.as_path

let apply_announce t ps prefix attrs =
  if looped t attrs then apply_withdraw t ps prefix
  else begin
    ps.adj_in <- Ptrie.add prefix attrs ps.adj_in;
    let raw = Route.make ~prefix ~attrs ~peer:ps.peer in
    let accepted = Policy.apply ps.policy raw in
    set_candidate t ~peer_id:(Peer.id ps.peer) prefix accepted
  end

let apply_update t ~peer_id (u : Msg.update) =
  let ps = peer_state t peer_id in
  let withdrawals =
    List.filter_map (fun p -> apply_withdraw t ps p) u.Msg.withdrawn
  in
  let announcements =
    match (u.Msg.attrs, u.Msg.nlri) with
    | _, [] -> []
    | None, _ :: _ -> invalid_arg "Rib.apply_update: NLRI without attributes"
    | Some attrs, nlri ->
        List.filter_map (fun p -> apply_announce t ps p attrs) nlri
  in
  withdrawals @ announcements

let announce t ~peer_id prefix attrs =
  apply_update t ~peer_id { Msg.withdrawn = []; attrs = Some attrs; nlri = [ prefix ] }

let withdraw t ~peer_id prefix =
  apply_update t ~peer_id { Msg.withdrawn = [ prefix ]; attrs = None; nlri = [] }

let drop_peer t ~peer_id =
  let ps = peer_state t peer_id in
  let prefixes = List.map fst (Ptrie.to_list ps.adj_in) in
  List.filter_map (fun p -> apply_withdraw t ps p) prefixes

let entry t prefix = Ptrie.find prefix t.loc

let best t prefix = best_of_entry (entry t prefix)

let ranked t prefix =
  match entry t prefix with
  | None -> []
  | Some e -> e.ranked

let candidates = ranked

let lookup t addr =
  match Ptrie.longest_match addr t.loc with
  | None -> None
  | Some (p, e) -> (
      match e.ranked with
      | [] -> None
      | r :: _ -> Some (p, r))

let adj_rib_in t ~peer_id =
  let ps = peer_state t peer_id in
  Ptrie.to_list ps.adj_in

let prefixes t = List.map fst (Ptrie.to_list t.loc)
let prefix_count t = Ptrie.cardinal t.loc

let route_count t =
  Ptrie.fold (fun _ e acc -> acc + List.length e.ranked) t.loc 0

let fold f t acc = Ptrie.fold (fun p e acc -> f p e.ranked acc) t.loc acc
