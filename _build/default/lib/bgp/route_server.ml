type export = {
  to_member : int;
  update : Msg.update;
}

type member = {
  peer : Peer.t;
  export_policy : Policy.t;
}

type t = {
  rs_asn : Asn.t;
  router_id : Ipv4.t;
  rib : Rib.t;
  members : (int, member) Hashtbl.t;
}

let create ~asn ~router_id =
  { rs_asn = asn; router_id; rib = Rib.create (); members = Hashtbl.create 16 }

let asn t = t.rs_asn

let member_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.members [] |> List.sort compare

(* Export [route] to [member]: transparent (path and next hop untouched),
   but subject to the member's export policy and to sender-loop
   suppression (never reflect a member's route back to itself — the
   caller guarantees that via the change's provenance). *)
let export_to member route =
  match Policy.apply member.export_policy route with
  | None -> None
  | Some filtered ->
      Some
        {
          to_member = Peer.id member.peer;
          update =
            {
              Msg.withdrawn = [];
              attrs = Some (Route.attrs filtered);
              nlri = [ Route.prefix filtered ];
            };
        }

let withdraw_to member prefix =
  {
    to_member = Peer.id member.peer;
    update = { Msg.withdrawn = [ prefix ]; attrs = None; nlri = [] };
  }

(* turn a best-route change into exports for every member except the one
   now carrying the best route *)
let exports_for_change t (change : Rib.change) =
  Hashtbl.fold
    (fun member_id member acc ->
      match change.Rib.new_best with
      | Some best when Route.peer_id best = member_id ->
          (* never reflect a route back at its announcer *)
          acc
      | Some best -> (
          match export_to member best with
          | Some e -> e :: acc
          | None -> (
              (* policy rejects the new best: if the member previously had
                 a route for this prefix, withdraw it *)
              match change.Rib.old_best with
              | Some _ -> withdraw_to member change.Rib.prefix :: acc
              | None -> acc))
      | None -> (
          match change.Rib.old_best with
          | Some old when Route.peer_id old = member_id -> acc
          | Some _ -> withdraw_to member change.Rib.prefix :: acc
          | None -> acc))
    t.members []

let exports_for_changes t changes =
  List.concat_map (exports_for_change t) changes

let add_member ?(export_policy = Policy.accept_all) t peer =
  let id = Peer.id peer in
  if Hashtbl.mem t.members id then
    invalid_arg (Printf.sprintf "Route_server.add_member: duplicate member %d" id);
  let member = { peer; export_policy } in
  Hashtbl.replace t.members id member;
  (* members announce raw routes; the server imports everything valid *)
  Rib.add_peer t.rib peer ~policy:Policy.accept_all;
  (* catch the new member up with current best routes *)
  Rib.fold
    (fun _prefix ranked acc ->
      match ranked with
      | [] -> acc
      | best :: _ when Route.peer_id best = id -> acc
      | best :: _ -> (
          match export_to member best with
          | Some e -> e :: acc
          | None -> acc))
    t.rib []

let member_update t ~member_id update =
  if not (Hashtbl.mem t.members member_id) then
    invalid_arg (Printf.sprintf "Route_server: unknown member %d" member_id);
  let changes = Rib.apply_update t.rib ~peer_id:member_id update in
  exports_for_changes t changes

let drop_member t ~member_id =
  if not (Hashtbl.mem t.members member_id) then
    invalid_arg (Printf.sprintf "Route_server: unknown member %d" member_id);
  let changes = Rib.drop_peer t.rib ~peer_id:member_id in
  Hashtbl.remove t.members member_id;
  exports_for_changes t changes

let best t prefix = Rib.best t.rib prefix
let prefix_count t = Rib.prefix_count t.rib
