(** An IXP route server.

    Multilateral peering: members announce to the route server, which
    re-exports the best route per prefix to every other member —
    {e transparently}: the server does not put its own ASN on the path
    and does not rewrite the next hop, so traffic flows member-to-member
    across the fabric while the server only handles control plane. This
    is the "route server" neighbor kind the PoP model peers with, built
    out of the same RIB machinery as everything else.

    Sans-IO, message-level: feed member UPDATEs in, get per-member export
    UPDATEs out. *)

type export = {
  to_member : int;          (** member peer id to send to *)
  update : Msg.update;
}

type t

val create : asn:Asn.t -> router_id:Ipv4.t -> t
val asn : t -> Asn.t

val add_member : ?export_policy:Policy.t -> t -> Peer.t -> export list
(** Register a member. The returned exports bring the new member up to
    date with the server's current best routes. [export_policy] filters
    and transforms what this member receives (default: everything,
    unchanged). *)

val member_ids : t -> int list

val member_update : t -> member_id:int -> Msg.update -> export list
(** Process one member's UPDATE; returns the exports (to every other
    member whose policy accepts them) reflecting any best-route changes.
    Withdrawn best routes export as withdrawals (or as implicit
    replacement announcements when another member's route takes over). *)

val drop_member : t -> member_id:int -> export list
(** Member session lost: flush its routes, export the fallout. *)

val best : t -> Prefix.t -> Route.t option
val prefix_count : t -> int
