type segment =
  | Seq of Asn.t list
  | Set of Asn.t list

type t = segment list

let empty = []

let normalise segs =
  List.filter
    (function
      | Seq [] | Set [] -> false
      | Seq _ | Set _ -> true)
    segs

let of_segments segs = normalise segs
let segments t = t

let of_list = function
  | [] -> []
  | asns -> [ Seq asns ]

let origin_of_list = of_list

let length t =
  List.fold_left
    (fun acc seg ->
      match seg with
      | Seq asns -> acc + List.length asns
      | Set _ -> acc + 1)
    0 t

let prepend asn t =
  match t with
  | Seq asns :: rest -> Seq (asn :: asns) :: rest
  | ([] | Set _ :: _) as rest -> Seq [ asn ] :: rest

let rec prepend_n asn n t = if n <= 0 then t else prepend_n asn (n - 1) (prepend asn t)

let origin_as t =
  let rec last_seq acc = function
    | [] -> acc
    | Seq asns :: rest -> last_seq (Some asns) rest
    | Set _ :: rest -> last_seq acc rest
  in
  match last_seq None t with
  | None -> None
  | Some asns -> (
      match List.rev asns with
      | [] -> None
      | origin :: _ -> Some origin)

let first_as t =
  match t with
  | Seq (a :: _) :: _ -> Some a
  | Set (a :: _) :: _ -> Some a
  | _ -> None

let to_list t =
  List.concat_map
    (function
      | Seq asns -> asns
      | Set asns -> asns)
    t

let mem asn t = List.exists (Asn.equal asn) (to_list t)

let compare_segment a b =
  match (a, b) with
  | Seq x, Seq y -> List.compare Asn.compare x y
  | Set x, Set y -> List.compare Asn.compare x y
  | Seq _, Set _ -> -1
  | Set _, Seq _ -> 1

let compare = List.compare compare_segment
let equal a b = compare a b = 0

let pp fmt t =
  let pp_asns fmt asns =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
      Asn.pp fmt asns
  in
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
    (fun fmt seg ->
      match seg with
      | Seq asns -> pp_asns fmt asns
      | Set asns -> Format.fprintf fmt "{%a}" pp_asns asns)
    fmt t

let to_string t = Format.asprintf "%a" pp t
