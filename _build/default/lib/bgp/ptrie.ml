type 'a t =
  | Leaf
  | Node of { value : 'a option; left : 'a t; right : 'a t }

let empty = Leaf

let is_empty = function
  | Leaf -> true
  | Node _ -> false

let node value left right =
  match (value, left, right) with
  | None, Leaf, Leaf -> Leaf
  | _ -> Node { value; left; right }

(* Navigation follows the prefix's bits from the most significant; a
   binding lives at depth [Prefix.length]. *)

let rec add_at depth p v t =
  match t with
  | Leaf ->
      if depth = Prefix.length p then Node { value = Some v; left = Leaf; right = Leaf }
      else if Ipv4.bit (Prefix.network p) depth then
        Node { value = None; left = Leaf; right = add_at (depth + 1) p v Leaf }
      else Node { value = None; left = add_at (depth + 1) p v Leaf; right = Leaf }
  | Node { value; left; right } ->
      if depth = Prefix.length p then Node { value = Some v; left; right }
      else if Ipv4.bit (Prefix.network p) depth then
        Node { value; left; right = add_at (depth + 1) p v right }
      else Node { value; left = add_at (depth + 1) p v left; right }

let add p v t = add_at 0 p v t

let rec remove_at depth p t =
  match t with
  | Leaf -> Leaf
  | Node { value; left; right } ->
      if depth = Prefix.length p then node None left right
      else if Ipv4.bit (Prefix.network p) depth then
        node value left (remove_at (depth + 1) p right)
      else node value (remove_at (depth + 1) p left) right

let remove p t = remove_at 0 p t

let rec find_at depth p t =
  match t with
  | Leaf -> None
  | Node { value; left; right } ->
      if depth = Prefix.length p then value
      else if Ipv4.bit (Prefix.network p) depth then find_at (depth + 1) p right
      else find_at (depth + 1) p left

let find p t = find_at 0 p t
let mem p t = Option.is_some (find p t)

let update p f t =
  match f (find p t) with
  | None -> remove p t
  | Some v -> add p v t

let rec matches_at depth addr t acc =
  match t with
  | Leaf -> acc
  | Node { value; left; right } ->
      let acc =
        match value with
        | None -> acc
        | Some v -> (Prefix.make addr depth, v) :: acc
      in
      if depth = 32 then acc
      else if Ipv4.bit addr depth then matches_at (depth + 1) addr right acc
      else matches_at (depth + 1) addr left acc

let matches addr t = matches_at 0 addr t []

let longest_match addr t =
  match matches addr t with
  | [] -> None
  | best :: _ -> Some best

let rec fold_at depth bits f t acc =
  match t with
  | Leaf -> acc
  | Node { value; left; right } ->
      let acc =
        match value with
        | None -> acc
        | Some v -> f (Prefix.make (Ipv4.of_int32 bits) depth) v acc
      in
      let acc = fold_at (depth + 1) bits f left acc in
      if depth = 32 then acc
      else
        let hi = Int32.logor bits (Int32.shift_left 1l (31 - depth)) in
        fold_at (depth + 1) hi f right acc

let fold f t acc = fold_at 0 0l f t acc
let iter f t = fold (fun p v () -> f p v) t ()
let cardinal t = fold (fun _ _ n -> n + 1) t 0

let rec map f = function
  | Leaf -> Leaf
  | Node { value; left; right } ->
      Node { value = Option.map f value; left = map f left; right = map f right }

let filter pred t =
  fold (fun p v acc -> if pred p v then acc else remove p acc) t t

let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l
let keys t = List.map fst (to_list t)

let covered p t =
  fold
    (fun q v acc -> if Prefix.subsumes p q then (q, v) :: acc else acc)
    t []
  |> List.rev

let union f a b = fold (fun p v acc ->
    update p (function None -> Some v | Some w -> Some (f w v)) acc)
    b a
