(** A candidate route: one prefix's path attributes as learned from one
    peer. The Loc-RIB holds several of these per prefix; the decision
    process ranks them; the allocator detours traffic between them. *)

type t = {
  prefix : Prefix.t;
  attrs : Attrs.t;
  peer : Peer.t;   (** the neighbor this route was learned from *)
}

val make : prefix:Prefix.t -> attrs:Attrs.t -> peer:Peer.t -> t

val prefix : t -> Prefix.t
val attrs : t -> Attrs.t
val peer : t -> Peer.t
val peer_id : t -> int
val peer_kind : t -> Peer.kind
val local_pref : t -> int
val as_path_length : t -> int
val next_hop : t -> Ipv4.t
val origin_as : t -> Asn.t option
val has_community : Community.t -> t -> bool

val with_attrs : Attrs.t -> t -> t

val compare : t -> t -> int
(** Structural order (prefix, then attrs, then peer) — a total order for
    use in sets/maps, {e not} the decision-process preference. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
