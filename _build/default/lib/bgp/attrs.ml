type origin = Igp | Egp | Incomplete

let origin_rank = function
  | Igp -> 0
  | Egp -> 1
  | Incomplete -> 2

let origin_to_string = function
  | Igp -> "IGP"
  | Egp -> "EGP"
  | Incomplete -> "INCOMPLETE"

let pp_origin fmt o = Format.pp_print_string fmt (origin_to_string o)

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  communities : Community.t list;
}

let norm_communities cs = List.sort_uniq Community.compare cs

let make ?(origin = Igp) ?(med = None) ?(local_pref = None) ?(communities = [])
    ~as_path ~next_hop () =
  { origin; as_path; next_hop; med; local_pref;
    communities = norm_communities communities }

let with_local_pref lp t = { t with local_pref = Some lp }
let with_med med t = { t with med }

let add_community c t =
  { t with communities = norm_communities (c :: t.communities) }

let remove_community c t =
  { t with communities = List.filter (fun c' -> not (Community.equal c c')) t.communities }

let has_community c t = List.exists (Community.equal c) t.communities

let prepend_path asn n t = { t with as_path = As_path.prepend_n asn n t.as_path }

let effective_local_pref t = Option.value t.local_pref ~default:100

let compare a b =
  let cmp_opt = Option.compare Int.compare in
  match origin_rank a.origin - origin_rank b.origin with
  | 0 -> (
      match As_path.compare a.as_path b.as_path with
      | 0 -> (
          match Ipv4.compare a.next_hop b.next_hop with
          | 0 -> (
              match cmp_opt a.med b.med with
              | 0 -> (
                  match cmp_opt a.local_pref b.local_pref with
                  | 0 -> List.compare Community.compare a.communities b.communities
                  | c -> c)
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> if c < 0 then -1 else 1

let equal a b = compare a b = 0

let pp fmt t =
  Format.fprintf fmt "@[origin=%a path=[%a] nh=%a med=%s lp=%s comms=[%a]@]"
    pp_origin t.origin As_path.pp t.as_path Ipv4.pp t.next_hop
    (match t.med with None -> "-" | Some m -> string_of_int m)
    (match t.local_pref with None -> "-" | Some l -> string_of_int l)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
       Community.pp)
    t.communities
