(** Route-flap damping (RFC 2439).

    A flapping route — announced and withdrawn in a tight loop by an
    unstable neighbor — would make the controller chase a moving target
    (and, in real deployments, melt CPU on every router that hears it).
    Damping accumulates a penalty per (prefix, neighbor) on each flap,
    decays it exponentially with a configurable half-life, suppresses the
    route while the penalty exceeds the suppress threshold, and releases
    it once decay brings the penalty under the reuse threshold.

    Time is explicit (seconds in, no hidden clock), so behaviour is fully
    deterministic and testable. *)

type config = {
  withdraw_penalty : float;      (** added per withdrawal (RFC: 1000) *)
  readvertise_penalty : float;   (** added per re-announcement (RFC: 0-1000) *)
  attr_change_penalty : float;   (** added per attribute change (RFC: 500) *)
  suppress_threshold : float;    (** suppress above this (typ. 2000) *)
  reuse_threshold : float;       (** release below this (typ. 750) *)
  half_life_s : float;           (** penalty decay half-life (typ. 900 s) *)
  max_penalty : float;           (** penalty ceiling (bounds suppression time) *)
}

val default_config : config
(** 1000/500/500, suppress 2000, reuse 750, half-life 900 s, ceiling
    16000 (≈ 66 min max suppression). *)

type event =
  | Withdrawal
  | Readvertisement
  | Attribute_change

type t

val create : ?config:config -> unit -> t

val record : t -> now_s:int -> prefix:Prefix.t -> peer_id:int -> event -> unit
(** Fold one flap event in (decaying the stored penalty first). *)

val penalty : t -> now_s:int -> prefix:Prefix.t -> peer_id:int -> float
(** Current (decayed) penalty; 0 for unknown routes. *)

val is_suppressed : t -> now_s:int -> prefix:Prefix.t -> peer_id:int -> bool
(** True while the decayed penalty sits above the reuse threshold {e and}
    the route has crossed the suppress threshold since it last dropped
    below reuse (standard damping hysteresis). *)

val reuse_time : t -> now_s:int -> prefix:Prefix.t -> peer_id:int -> int option
(** Seconds until a currently-suppressed route becomes reusable
    ([None] when not suppressed). *)

val suppressed_count : t -> now_s:int -> int
val sweep : t -> now_s:int -> unit
(** Forget entries whose penalty decayed to noise (< 1.0) — call
    occasionally to bound memory on long runs. *)
