(** BGP session finite-state machine (RFC 4271 §8), sans-IO.

    The machine owns no sockets and no clocks: callers feed it {!event}s
    (TCP status changes, decoded messages, timer expiries) and execute the
    {!action}s it returns (connect, send a message, arm a timer, deliver an
    UPDATE to the RIB). This keeps it deterministic and directly testable —
    the same shape production BGP implementations use for their cores.

    Simplifications relative to the full RFC: one connection per session
    (no collision detection), no delay-open, no damping of restarts. The
    state chart (Idle → Connect → Active → OpenSent → OpenConfirm →
    Established) and hold/keepalive/connect-retry timer behaviour follow
    the RFC. *)

type state =
  | Idle
  | Connect
  | Active
  | Open_sent
  | Open_confirm
  | Established

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit

type timer =
  | Connect_retry_timer
  | Hold_timer
  | Keepalive_timer

val timer_to_string : timer -> string

type event =
  | Manual_start
  | Manual_stop
  | Tcp_connected           (** outbound connect completed (or inbound accepted) *)
  | Tcp_failed              (** connect attempt failed *)
  | Tcp_closed              (** established transport dropped *)
  | Timer_expired of timer
  | Received of Msg.t

type action =
  | Connect_tcp
  | Close_tcp
  | Send of Msg.t
  | Deliver_update of Msg.update  (** give to the RIB layer *)
  | Refresh_requested of { afi : int; safi : int }
      (** the peer asked for our Adj-RIB-Out again (RFC 2918) *)
  | Start_timer of timer * int    (** arm (or re-arm) with period seconds *)
  | Stop_timer of timer
  | Session_up
  | Session_down of string        (** reason *)

type config = {
  local_asn : Asn.t;
  local_id : Ipv4.t;
  hold_time : int;          (** proposed; negotiated down to peer's offer *)
  connect_retry : int;      (** seconds between connect attempts *)
  remote_asn : Asn.t option; (** when set, OPENs from other ASNs are refused *)
}

val default_config : local_asn:Asn.t -> local_id:Ipv4.t -> config
(** hold 90 s, connect-retry 30 s, any remote ASN. *)

type t

val create : config -> t
val state : t -> state
val negotiated_hold_time : t -> int option
(** min(our offer, peer offer) once an OPEN has been processed. *)

val peer_open : t -> Msg.open_msg option
(** The OPEN received from the peer, once seen. *)

val handle : t -> event -> action list
(** Advance the machine. Unexpected events in a given state either are
    ignored (returning []) or reset the session per the RFC (returning
    the teardown actions). *)
