lib/bgp/damping.mli: Prefix
