lib/bgp/mrt.mli: Asn Attrs Format Ipv4 Prefix Rib
