lib/bgp/rib.ml: As_path Asn Attrs Decision Hashtbl List Msg Option Peer Policy Prefix Printf Ptrie Route
