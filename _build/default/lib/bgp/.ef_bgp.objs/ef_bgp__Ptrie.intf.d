lib/bgp/ptrie.mli: Ipv4 Prefix
