lib/bgp/policy.mli: Asn Attrs Community Peer Prefix Route
