lib/bgp/codec.mli: Attrs Format Msg
