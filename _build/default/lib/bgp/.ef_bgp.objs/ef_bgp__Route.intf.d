lib/bgp/route.mli: Asn Attrs Community Format Ipv4 Peer Prefix
