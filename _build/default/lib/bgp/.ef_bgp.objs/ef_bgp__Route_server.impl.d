lib/bgp/route_server.ml: Asn Hashtbl Ipv4 List Msg Peer Policy Printf Rib Route
