lib/bgp/codec.ml: As_path Asn Attrs Buffer Char Community Format Int32 Ipv4 List Msg Prefix String
