lib/bgp/attrs.mli: As_path Asn Community Format Ipv4
