lib/bgp/fsm.ml: Asn Format Ipv4 List Msg
