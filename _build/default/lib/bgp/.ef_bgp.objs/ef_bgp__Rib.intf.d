lib/bgp/rib.mli: Asn Attrs Decision Ipv4 Msg Peer Policy Prefix Route
