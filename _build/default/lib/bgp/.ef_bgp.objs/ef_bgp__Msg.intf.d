lib/bgp/msg.mli: Asn Attrs Format Ipv4 Prefix
