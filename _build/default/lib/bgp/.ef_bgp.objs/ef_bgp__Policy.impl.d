lib/bgp/policy.ml: As_path Asn Attrs Community List Peer Prefix Route
