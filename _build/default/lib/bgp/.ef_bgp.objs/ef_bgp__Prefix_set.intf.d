lib/bgp/prefix_set.mli: Ipv4 Prefix
