lib/bgp/asn.ml: Format Int
