lib/bgp/peer.ml: Asn Format Int Ipv4
