lib/bgp/msg.ml: Asn Attrs Format Ipv4 List Option Prefix String
