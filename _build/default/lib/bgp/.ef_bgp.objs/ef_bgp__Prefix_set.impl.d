lib/bgp/prefix_set.ml: List Prefix Ptrie
