lib/bgp/decision.ml: As_path Asn Attrs Hashtbl Int Int32 Ipv4 List Option Peer Route
