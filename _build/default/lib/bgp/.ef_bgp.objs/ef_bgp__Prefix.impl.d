lib/bgp/prefix.ml: Float Format Int Int32 Ipv4 List Printf String
