lib/bgp/route_server.mli: Asn Ipv4 Msg Peer Policy Prefix Route
