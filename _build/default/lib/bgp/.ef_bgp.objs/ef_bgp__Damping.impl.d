lib/bgp/damping.ml: Float Hashtbl List Prefix
