lib/bgp/speaker.mli: Asn Decision Fsm Ipv4 Msg Peer Policy Prefix Rib
