lib/bgp/attrs.ml: As_path Community Format Int Ipv4 List Option
