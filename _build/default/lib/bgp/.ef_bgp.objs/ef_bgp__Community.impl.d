lib/bgp/community.ml: Format Int32 Printf String
