lib/bgp/route.ml: As_path Attrs Format Peer Prefix
