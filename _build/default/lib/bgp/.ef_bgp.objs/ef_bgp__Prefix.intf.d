lib/bgp/prefix.mli: Format Ipv4
