lib/bgp/speaker.ml: As_path Asn Attrs Codec Fsm Hashtbl Ipv4 List Msg Option Peer Policy Printf Ptrie Rib Route
