lib/bgp/peer.mli: Asn Format Ipv4
