lib/bgp/ptrie.ml: Int32 Ipv4 List Option Prefix
