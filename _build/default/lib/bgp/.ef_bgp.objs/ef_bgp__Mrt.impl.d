lib/bgp/mrt.ml: Asn Attrs Buffer Char Codec Format Fun Hashtbl In_channel Int32 Ipv4 List Peer Prefix Rib Route String
