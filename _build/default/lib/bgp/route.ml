type t = {
  prefix : Prefix.t;
  attrs : Attrs.t;
  peer : Peer.t;
}

let make ~prefix ~attrs ~peer = { prefix; attrs; peer }
let prefix t = t.prefix
let attrs t = t.attrs
let peer t = t.peer
let peer_id t = Peer.id t.peer
let peer_kind t = Peer.kind t.peer
let local_pref t = Attrs.effective_local_pref t.attrs
let as_path_length t = As_path.length t.attrs.Attrs.as_path
let next_hop t = t.attrs.Attrs.next_hop
let origin_as t = As_path.origin_as t.attrs.Attrs.as_path
let has_community c t = Attrs.has_community c t.attrs
let with_attrs attrs t = { t with attrs }

let compare a b =
  match Prefix.compare a.prefix b.prefix with
  | 0 -> (
      match Attrs.compare a.attrs b.attrs with
      | 0 -> Peer.compare a.peer b.peer
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp fmt t =
  Format.fprintf fmt "@[%a via %a %a@]" Prefix.pp t.prefix Peer.pp t.peer
    Attrs.pp t.attrs
