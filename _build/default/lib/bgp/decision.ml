type med_mode =
  | Same_neighbor_as
  | Always

type config = { med_mode : med_mode }

let default_config = { med_mode = Same_neighbor_as }

let med_value (r : Route.t) =
  Option.value (Route.attrs r).Attrs.med ~default:0

let neighbor_as r =
  match As_path.first_as (Route.attrs r).Attrs.as_path with
  | Some a -> a
  | None -> Route.peer r |> Peer.asn

(* Keep only the candidates minimising [key]. *)
let keep_min key = function
  | [] -> []
  | routes ->
      let best = List.fold_left (fun acc r -> min acc (key r)) max_int routes in
      List.filter (fun r -> key r = best) routes

let eliminate_med config routes =
  match config.med_mode with
  | Always -> keep_min med_value routes
  | Same_neighbor_as ->
      (* within each neighbor-AS group, keep only lowest-MED routes *)
      let groups = Hashtbl.create 8 in
      List.iter
        (fun r ->
          let k = neighbor_as r in
          let current = Option.value (Hashtbl.find_opt groups k) ~default:max_int in
          if med_value r < current then Hashtbl.replace groups k (med_value r))
        routes;
      List.filter
        (fun r -> med_value r = Hashtbl.find groups (neighbor_as r))
        routes

let survivors ?(config = default_config) routes =
  routes
  |> keep_min (fun r -> -Route.local_pref r)
  |> keep_min Route.as_path_length
  |> keep_min (fun r -> Attrs.origin_rank (Route.attrs r).Attrs.origin)
  |> eliminate_med config
  |> keep_min (fun r ->
         (* router-id as unsigned int *)
         let rid = (Route.peer r).Peer.router_id in
         Int32.to_int (Ipv4.to_int32 rid) land 0xFFFFFFFF)
  |> keep_min Route.peer_id

let best ?config routes =
  match survivors ?config routes with
  | [] -> None
  | r :: _ -> Some r

let rank ?config routes =
  let rec go remaining acc =
    match best ?config remaining with
    | None -> List.rev acc
    | Some r ->
        let remaining =
          List.filter (fun r' -> not (Route.equal r r')) remaining
        in
        go remaining (r :: acc)
  in
  go routes []

let compare_routes ?(config = default_config) a b =
  let tiers r =
    ( -Route.local_pref r,
      Route.as_path_length r,
      Attrs.origin_rank (Route.attrs r).Attrs.origin )
  in
  match compare (tiers a) (tiers b) with
  | 0 ->
      let med_cmp =
        match config.med_mode with
        | Always -> Int.compare (med_value a) (med_value b)
        | Same_neighbor_as ->
            if Asn.equal (neighbor_as a) (neighbor_as b) then
              Int.compare (med_value a) (med_value b)
            else 0
      in
      if med_cmp <> 0 then med_cmp
      else begin
        let rid r =
          Int32.to_int (Ipv4.to_int32 (Route.peer r).Peer.router_id)
          land 0xFFFFFFFF
        in
        match Int.compare (rid a) (rid b) with
        | 0 -> Int.compare (Route.peer_id a) (Route.peer_id b)
        | c -> c
      end
  | c -> c

let preference_level candidates r =
  let ranked = rank candidates in
  let rec index i = function
    | [] -> None
    | r' :: rest -> if Route.equal r r' then Some i else index (i + 1) rest
  in
  index 0 ranked
