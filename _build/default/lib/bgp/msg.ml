type capability =
  | Multiprotocol of { afi : int; safi : int }
  | Route_refresh
  | Four_octet_as of Asn.t
  | Unknown_capability of { code : int; data : string }

type open_msg = {
  version : int;
  my_as : Asn.t;
  hold_time : int;
  bgp_id : Ipv4.t;
  capabilities : capability list;
}

type update = {
  withdrawn : Prefix.t list;
  attrs : Attrs.t option;
  nlri : Prefix.t list;
}

type notif_code =
  | Message_header_error of int
  | Open_message_error of int
  | Update_message_error of int
  | Hold_timer_expired
  | Fsm_error
  | Cease of int

type notification = {
  code : notif_code;
  data : string;
}

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive
  | Route_refresh of { afi : int; safi : int }

let make_open ?(version = 4) ?(hold_time = 90) ?capabilities ~asn ~bgp_id () =
  let capabilities =
    match capabilities with
    | Some caps -> caps
    | None -> [ Four_octet_as asn ]
  in
  Open { version; my_as = asn; hold_time; bgp_id; capabilities }

let make_update ?(withdrawn = []) ?attrs ?(nlri = []) () =
  Update { withdrawn; attrs; nlri }

let keepalive = Keepalive

let cease ?(subcode = 0) ?(data = "") () =
  Notification { code = Cease subcode; data }

let kind_to_string = function
  | Open _ -> "OPEN"
  | Update _ -> "UPDATE"
  | Notification _ -> "NOTIFICATION"
  | Keepalive -> "KEEPALIVE"
  | Route_refresh _ -> "ROUTE-REFRESH"

let pp_capability fmt = function
  | Multiprotocol { afi; safi } -> Format.fprintf fmt "mp(%d,%d)" afi safi
  | Route_refresh -> Format.pp_print_string fmt "route-refresh"
  | Four_octet_as asn -> Format.fprintf fmt "as4(%a)" Asn.pp asn
  | Unknown_capability { code; data } ->
      Format.fprintf fmt "cap%d(%d bytes)" code (String.length data)

let pp_notif_code fmt = function
  | Message_header_error s -> Format.fprintf fmt "header-error/%d" s
  | Open_message_error s -> Format.fprintf fmt "open-error/%d" s
  | Update_message_error s -> Format.fprintf fmt "update-error/%d" s
  | Hold_timer_expired -> Format.pp_print_string fmt "hold-timer-expired"
  | Fsm_error -> Format.pp_print_string fmt "fsm-error"
  | Cease s -> Format.fprintf fmt "cease/%d" s

let pp fmt = function
  | Open o ->
      Format.fprintf fmt "OPEN{as%a hold=%d id=%a caps=[%a]}" Asn.pp o.my_as
        o.hold_time Ipv4.pp o.bgp_id
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           pp_capability)
        o.capabilities
  | Update u ->
      Format.fprintf fmt "UPDATE{withdrawn=[%a] nlri=[%a]%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           Prefix.pp)
        u.withdrawn
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           Prefix.pp)
        u.nlri
        (fun fmt -> function
          | None -> ()
          | Some a -> Format.fprintf fmt " %a" Attrs.pp a)
        u.attrs
  | Notification n -> Format.fprintf fmt "NOTIFICATION{%a}" pp_notif_code n.code
  | Keepalive -> Format.pp_print_string fmt "KEEPALIVE"
  | Route_refresh { afi; safi } ->
      Format.fprintf fmt "ROUTE-REFRESH{afi=%d safi=%d}" afi safi

let equal_capability a b =
  match (a, b) with
  | Multiprotocol x, Multiprotocol y -> x.afi = y.afi && x.safi = y.safi
  | Route_refresh, Route_refresh -> true
  | Four_octet_as x, Four_octet_as y -> Asn.equal x y
  | Unknown_capability x, Unknown_capability y ->
      x.code = y.code && String.equal x.data y.data
  | (Multiprotocol _ | Route_refresh | Four_octet_as _ | Unknown_capability _), _
    -> false

let equal a b =
  match (a, b) with
  | Keepalive, Keepalive -> true
  | Open x, Open y ->
      x.version = y.version && Asn.equal x.my_as y.my_as
      && x.hold_time = y.hold_time
      && Ipv4.equal x.bgp_id y.bgp_id
      && List.length x.capabilities = List.length y.capabilities
      && List.for_all2 equal_capability x.capabilities y.capabilities
  | Update x, Update y ->
      List.compare Prefix.compare x.withdrawn y.withdrawn = 0
      && List.compare Prefix.compare x.nlri y.nlri = 0
      && Option.equal Attrs.equal x.attrs y.attrs
  | Notification x, Notification y -> x.code = y.code && String.equal x.data y.data
  | Route_refresh x, Route_refresh y -> x.afi = y.afi && x.safi = y.safi
  | (Keepalive | Open _ | Update _ | Notification _ | Route_refresh _), _ ->
      false
