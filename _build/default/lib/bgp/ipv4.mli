(** IPv4 addresses as immutable 32-bit values.

    Addresses are stored in host order inside an [int32]; all arithmetic
    (masking, successor, ranges) treats them as unsigned. *)

type t

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d]. Octets outside [0,255] raise
    [Invalid_argument]. *)

val of_string : string -> t
(** Parse dotted-quad notation. Raises [Invalid_argument] on malformed
    input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Unsigned order, so [255.0.0.0 > 1.0.0.0]. *)

val equal : t -> t -> bool
val hash : t -> int

val succ : t -> t
(** Next address, wrapping at [255.255.255.255]. *)

val add : t -> int -> t
(** [add t n] offsets by [n] addresses (unsigned wraparound). *)

val mask : int -> int32
(** [mask len] is the netmask for a prefix of length [len] (0–32). *)

val apply_mask : t -> int -> t
(** Zero the host bits beyond the given prefix length. *)

val bit : t -> int -> bool
(** [bit t i] is bit [i] counted from the most significant (bit 0 is the
    top bit). Requires [0 <= i < 32]. *)

val broadcast : t
val any : t
