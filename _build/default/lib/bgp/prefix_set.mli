(** Prefix-set algebra: normalization and CIDR aggregation.

    The /24-splitting allocator can move dozens of sibling children to
    the same detour target; announcing each child separately bloats the
    routers' tables and the BGP churn. Aggregation merges adjacent
    siblings back into the largest exact-covering CIDR blocks — the same
    operation route optimizers run before announcing. *)

val normalize : Prefix.t list -> Prefix.t list
(** Remove duplicates and any prefix already covered by a shorter prefix
    in the set. Result is in ascending prefix order. *)

val aggregate : Prefix.t list -> Prefix.t list
(** {!normalize}, then repeatedly merge sibling pairs (two prefixes of
    equal length that are the two halves of their parent) until no merge
    applies. The result covers exactly the same address space with the
    minimum number of CIDR blocks. *)

val covers : Prefix.t list -> Ipv4.t -> bool
(** Does any prefix in the set contain the address? *)

val same_space : Prefix.t list -> Prefix.t list -> bool
(** Do two sets cover exactly the same addresses? (Compares aggregated
    canonical forms.) *)
