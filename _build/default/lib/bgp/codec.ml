type error =
  | Truncated
  | Bad_marker
  | Bad_length of int
  | Unknown_msg_type of int
  | Malformed of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated"
  | Bad_marker -> Format.pp_print_string fmt "bad marker"
  | Bad_length n -> Format.fprintf fmt "bad length %d" n
  | Unknown_msg_type n -> Format.fprintf fmt "unknown message type %d" n
  | Malformed s -> Format.fprintf fmt "malformed: %s" s

let error_to_string e = Format.asprintf "%a" pp_error e

let max_message = 4096
let header_len = 19

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u16 buf v =
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_u32 buf (v : int32) =
  let v = Int32.to_int v land 0xFFFFFFFF in
  add_u8 buf (v lsr 24);
  add_u8 buf (v lsr 16);
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_prefix buf p =
  let len = Prefix.length p in
  add_u8 buf len;
  let nbytes = (len + 7) / 8 in
  let addr = Int32.to_int (Ipv4.to_int32 (Prefix.network p)) land 0xFFFFFFFF in
  for i = 0 to nbytes - 1 do
    add_u8 buf (addr lsr (24 - (8 * i)))
  done

let capability_body = function
  | Msg.Multiprotocol { afi; safi } ->
      let b = Buffer.create 4 in
      add_u16 b afi;
      add_u8 b 0;
      add_u8 b safi;
      (1, Buffer.contents b)
  | Msg.Route_refresh -> (2, "")
  | Msg.Four_octet_as asn ->
      let b = Buffer.create 4 in
      add_u32 b (Int32.of_int (Asn.to_int asn));
      (65, Buffer.contents b)
  | Msg.Unknown_capability { code; data } -> (code, data)

let encode_open (o : Msg.open_msg) =
  let buf = Buffer.create 64 in
  add_u8 buf o.version;
  let as16 =
    if Asn.fits_two_bytes o.my_as then Asn.to_int o.my_as else Asn.as_trans
  in
  add_u16 buf as16;
  add_u16 buf o.hold_time;
  add_u32 buf (Ipv4.to_int32 o.bgp_id);
  let caps = Buffer.create 32 in
  List.iter
    (fun cap ->
      let code, body = capability_body cap in
      add_u8 caps code;
      add_u8 caps (String.length body);
      Buffer.add_string caps body)
    o.capabilities;
  let caps = Buffer.contents caps in
  if String.length caps = 0 then add_u8 buf 0
  else begin
    (* one optional parameter of type 2 (capabilities) *)
    add_u8 buf (String.length caps + 2);
    add_u8 buf 2;
    add_u8 buf (String.length caps);
    Buffer.add_string buf caps
  end;
  Buffer.contents buf

(* attribute flags *)
let flag_optional = 0x80
let flag_transitive = 0x40
let flag_extended = 0x10

let add_attr buf ~flags ~typ body =
  let len = String.length body in
  let flags = if len > 0xFF then flags lor flag_extended else flags in
  add_u8 buf flags;
  add_u8 buf typ;
  if len > 0xFF then add_u16 buf len else add_u8 buf len;
  Buffer.add_string buf body

let encode_as_path path =
  let b = Buffer.create 32 in
  List.iter
    (fun seg ->
      let typ, asns =
        match seg with
        | As_path.Set asns -> (1, asns)
        | As_path.Seq asns -> (2, asns)
      in
      (* split long segments at 255 members *)
      let rec chunks = function
        | [] -> ()
        | l ->
            let n = min 255 (List.length l) in
            let head = List.filteri (fun i _ -> i < n) l in
            let tail = List.filteri (fun i _ -> i >= n) l in
            add_u8 b typ;
            add_u8 b n;
            List.iter (fun a -> add_u32 b (Int32.of_int (Asn.to_int a))) head;
            chunks tail
      in
      chunks asns)
    (As_path.segments path);
  Buffer.contents b

let encode_attrs (a : Attrs.t) =
  let buf = Buffer.create 64 in
  (* ORIGIN, type 1 *)
  let origin_byte =
    match a.Attrs.origin with
    | Attrs.Igp -> 0
    | Attrs.Egp -> 1
    | Attrs.Incomplete -> 2
  in
  add_attr buf ~flags:flag_transitive ~typ:1 (String.make 1 (Char.chr origin_byte));
  (* AS_PATH, type 2 *)
  add_attr buf ~flags:flag_transitive ~typ:2 (encode_as_path a.Attrs.as_path);
  (* NEXT_HOP, type 3 *)
  let nh = Buffer.create 4 in
  add_u32 nh (Ipv4.to_int32 a.Attrs.next_hop);
  add_attr buf ~flags:flag_transitive ~typ:3 (Buffer.contents nh);
  (* MED, type 4 *)
  (match a.Attrs.med with
  | None -> ()
  | Some med ->
      let b = Buffer.create 4 in
      add_u32 b (Int32.of_int med);
      add_attr buf ~flags:flag_optional ~typ:4 (Buffer.contents b));
  (* LOCAL_PREF, type 5 *)
  (match a.Attrs.local_pref with
  | None -> ()
  | Some lp ->
      let b = Buffer.create 4 in
      add_u32 b (Int32.of_int lp);
      add_attr buf ~flags:flag_transitive ~typ:5 (Buffer.contents b));
  (* COMMUNITIES, type 8 *)
  (match a.Attrs.communities with
  | [] -> ()
  | cs ->
      let b = Buffer.create (4 * List.length cs) in
      List.iter (fun c -> add_u32 b (Community.to_int32 c)) cs;
      add_attr buf
        ~flags:(flag_optional lor flag_transitive)
        ~typ:8 (Buffer.contents b));
  Buffer.contents buf

let encode_update (u : Msg.update) =
  let buf = Buffer.create 128 in
  let withdrawn = Buffer.create 32 in
  List.iter (add_prefix withdrawn) u.withdrawn;
  add_u16 buf (Buffer.length withdrawn);
  Buffer.add_buffer buf withdrawn;
  let attrs =
    match (u.attrs, u.nlri) with
    | Some a, _ -> encode_attrs a
    | None, [] -> ""
    | None, _ :: _ ->
        invalid_arg "Codec.encode: UPDATE with NLRI requires attributes"
  in
  add_u16 buf (String.length attrs);
  Buffer.add_string buf attrs;
  List.iter (add_prefix buf) u.nlri;
  Buffer.contents buf

let notif_code_bytes = function
  | Msg.Message_header_error s -> (1, s)
  | Msg.Open_message_error s -> (2, s)
  | Msg.Update_message_error s -> (3, s)
  | Msg.Hold_timer_expired -> (4, 0)
  | Msg.Fsm_error -> (5, 0)
  | Msg.Cease s -> (6, s)

let encode_notification (n : Msg.notification) =
  let buf = Buffer.create 16 in
  let code, subcode = notif_code_bytes n.code in
  add_u8 buf code;
  add_u8 buf subcode;
  Buffer.add_string buf n.data;
  Buffer.contents buf

let encode msg =
  let typ, body =
    match msg with
    | Msg.Open o -> (1, encode_open o)
    | Msg.Update u -> (2, encode_update u)
    | Msg.Notification n -> (3, encode_notification n)
    | Msg.Keepalive -> (4, "")
    | Msg.Route_refresh { afi; safi } ->
        let b = Buffer.create 4 in
        add_u16 b afi;
        add_u8 b 0;
        add_u8 b safi;
        (5, Buffer.contents b)
  in
  let total = header_len + String.length body in
  if total > max_message then
    invalid_arg "Codec.encode: message exceeds 4096 bytes";
  let buf = Buffer.create total in
  Buffer.add_string buf (String.make 16 '\xFF');
  add_u16 buf total;
  add_u8 buf typ;
  Buffer.add_string buf body;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Fail of error

type reader = {
  buf : string;
  mutable pos : int;
  limit : int;
}

let need r n = if r.pos + n > r.limit then raise (Fail Truncated)

let u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u16 r =
  let hi = u8 r in
  let lo = u8 r in
  (hi lsl 8) lor lo

let u32 r =
  let a = u16 r in
  let b = u16 r in
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 16)
    (Int32.of_int b)

let take r n =
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let remaining r = r.limit - r.pos

let read_prefix r =
  let len = u8 r in
  if len > 32 then raise (Fail (Malformed "prefix length > 32"));
  let nbytes = (len + 7) / 8 in
  need r nbytes;
  let addr = ref 0l in
  for i = 0 to nbytes - 1 do
    let b = Char.code r.buf.[r.pos + i] in
    addr := Int32.logor !addr (Int32.shift_left (Int32.of_int b) (24 - (8 * i)))
  done;
  r.pos <- r.pos + nbytes;
  Prefix.make (Ipv4.of_int32 !addr) len

let read_prefixes r =
  let rec go acc =
    if remaining r = 0 then List.rev acc else go (read_prefix r :: acc)
  in
  go []

let sub_reader r n =
  need r n;
  let child = { buf = r.buf; pos = r.pos; limit = r.pos + n } in
  r.pos <- r.pos + n;
  child

let decode_capabilities r =
  let rec caps acc =
    if remaining r = 0 then List.rev acc
    else begin
      let code = u8 r in
      let len = u8 r in
      let body = sub_reader r len in
      let cap =
        match code with
        | 1 ->
            let afi = u16 body in
            let _reserved = u8 body in
            let safi = u8 body in
            Msg.Multiprotocol { afi; safi }
        | 2 -> Msg.Route_refresh
        | 65 ->
            let asn = Int32.to_int (u32 body) land 0xFFFFFFFF in
            Msg.Four_octet_as (Asn.of_int asn)
        | code -> Msg.Unknown_capability { code; data = take body (remaining body) }
      in
      caps (cap :: acc)
    end
  in
  caps []

let decode_open r =
  let version = u8 r in
  if version <> 4 then raise (Fail (Malformed "unsupported BGP version"));
  let as16 = u16 r in
  let hold_time = u16 r in
  if hold_time <> 0 && hold_time < 3 then
    raise (Fail (Malformed "hold time must be 0 or >= 3"));
  let bgp_id = Ipv4.of_int32 (u32 r) in
  let opt_len = u8 r in
  let opts = sub_reader r opt_len in
  let capabilities = ref [] in
  while remaining opts > 0 do
    let ptype = u8 opts in
    let plen = u8 opts in
    let body = sub_reader opts plen in
    if ptype = 2 then capabilities := !capabilities @ decode_capabilities body
    (* other optional parameter types are deprecated; skip them *)
  done;
  let capabilities = !capabilities in
  let my_as =
    (* prefer the 4-octet capability over the (possibly AS_TRANS) field *)
    let rec find = function
      | [] -> Asn.of_int as16
      | Msg.Four_octet_as a :: _ -> a
      | _ :: rest -> find rest
    in
    find capabilities
  in
  Msg.Open { version; my_as; hold_time; bgp_id; capabilities }

let decode_as_path r =
  let rec segs acc =
    if remaining r = 0 then List.rev acc
    else begin
      let typ = u8 r in
      let count = u8 r in
      let asns =
        List.init count (fun _ ->
            Asn.of_int (Int32.to_int (u32 r) land 0xFFFFFFFF))
      in
      let seg =
        match typ with
        | 1 -> As_path.Set asns
        | 2 -> As_path.Seq asns
        | _ -> raise (Fail (Malformed "unknown AS_PATH segment type"))
      in
      segs (seg :: acc)
    end
  in
  As_path.of_segments (segs [])

type partial_attrs = {
  mutable p_origin : Attrs.origin option;
  mutable p_as_path : As_path.t option;
  mutable p_next_hop : Ipv4.t option;
  mutable p_med : int option;
  mutable p_local_pref : int option;
  mutable p_communities : Community.t list;
}

let decode_attrs r ~has_nlri =
  let p =
    {
      p_origin = None;
      p_as_path = None;
      p_next_hop = None;
      p_med = None;
      p_local_pref = None;
      p_communities = [];
    }
  in
  while remaining r > 0 do
    let flags = u8 r in
    let typ = u8 r in
    let len = if flags land flag_extended <> 0 then u16 r else u8 r in
    let body = sub_reader r len in
    match typ with
    | 1 ->
        let o =
          match u8 body with
          | 0 -> Attrs.Igp
          | 1 -> Attrs.Egp
          | 2 -> Attrs.Incomplete
          | _ -> raise (Fail (Malformed "bad ORIGIN value"))
        in
        p.p_origin <- Some o
    | 2 -> p.p_as_path <- Some (decode_as_path body)
    | 3 -> p.p_next_hop <- Some (Ipv4.of_int32 (u32 body))
    | 4 -> p.p_med <- Some (Int32.to_int (u32 body) land 0xFFFFFFFF)
    | 5 -> p.p_local_pref <- Some (Int32.to_int (u32 body) land 0xFFFFFFFF)
    | 8 ->
        let n = remaining body / 4 in
        if remaining body mod 4 <> 0 then
          raise (Fail (Malformed "COMMUNITIES length not a multiple of 4"));
        p.p_communities <-
          List.init n (fun _ -> Community.of_int32 (u32 body))
    | _ ->
        (* unknown attribute: skip; transitive unknowns would be carried
           by a full router, which the simulator does not need *)
        ignore (take body (remaining body))
  done;
  if not has_nlri then None
  else
    match (p.p_origin, p.p_as_path, p.p_next_hop) with
    | Some origin, Some as_path, Some next_hop ->
        Some
          (Attrs.make ~origin ~med:p.p_med ~local_pref:p.p_local_pref
             ~communities:p.p_communities ~as_path ~next_hop ())
    | None, _, _ -> raise (Fail (Malformed "UPDATE missing ORIGIN"))
    | _, None, _ -> raise (Fail (Malformed "UPDATE missing AS_PATH"))
    | _, _, None -> raise (Fail (Malformed "UPDATE missing NEXT_HOP"))

let decode_update r =
  let withdrawn_len = u16 r in
  let withdrawn = read_prefixes (sub_reader r withdrawn_len) in
  let attrs_len = u16 r in
  let attrs_r = sub_reader r attrs_len in
  let nlri = read_prefixes r in
  let attrs = decode_attrs attrs_r ~has_nlri:(nlri <> []) in
  Msg.Update { withdrawn; attrs; nlri }

let decode_notification r =
  let code = u8 r in
  let subcode = u8 r in
  let data = take r (remaining r) in
  let code =
    match code with
    | 1 -> Msg.Message_header_error subcode
    | 2 -> Msg.Open_message_error subcode
    | 3 -> Msg.Update_message_error subcode
    | 4 -> Msg.Hold_timer_expired
    | 5 -> Msg.Fsm_error
    | 6 -> Msg.Cease subcode
    | _ -> raise (Fail (Malformed "unknown NOTIFICATION code"))
  in
  Msg.Notification { code; data }

let decode ?(pos = 0) buf =
  try
    let r = { buf; pos; limit = String.length buf } in
    need r header_len;
    for i = 0 to 15 do
      if buf.[r.pos + i] <> '\xFF' then raise (Fail Bad_marker)
    done;
    r.pos <- r.pos + 16;
    let total = u16 r in
    if total < header_len || total > max_message then
      raise (Fail (Bad_length total));
    let typ = u8 r in
    if pos + total > String.length buf then raise (Fail Truncated);
    let body = sub_reader r (total - header_len) in
    let msg =
      match typ with
      | 1 -> decode_open body
      | 2 -> decode_update body
      | 3 -> decode_notification body
      | 4 ->
          if remaining body <> 0 then
            raise (Fail (Malformed "KEEPALIVE with a body"))
          else Msg.Keepalive
      | 5 ->
          let afi = u16 body in
          let _reserved = u8 body in
          let safi = u8 body in
          Msg.Route_refresh { afi; safi }
      | t -> raise (Fail (Unknown_msg_type t))
    in
    if remaining body <> 0 then raise (Fail (Malformed "trailing bytes in body"));
    Ok (msg, pos + total)
  with Fail e -> Error e

let decode_exn buf =
  match decode buf with
  | Ok (msg, consumed) when consumed = String.length buf -> msg
  | Ok _ -> failwith "Codec.decode_exn: trailing bytes"
  | Error e -> failwith ("Codec.decode_exn: " ^ error_to_string e)

let encode_path_attributes = encode_attrs

let decode_path_attributes buf =
  try
    let r = { buf; pos = 0; limit = String.length buf } in
    match decode_attrs r ~has_nlri:true with
    | Some attrs -> Ok attrs
    | None -> Error (Malformed "missing mandatory attributes")
  with Fail e -> Error e

module Stream = struct
  type t = {
    mutable pending : string;
    mutable failed : error option;
  }

  let create () = { pending = ""; failed = None }
  let feed t s = t.pending <- t.pending ^ s

  let next t =
    match t.failed with
    | Some e -> Error e
    | None -> (
        match decode t.pending with
        | Ok (msg, consumed) ->
            t.pending <-
              String.sub t.pending consumed (String.length t.pending - consumed);
            Ok (Some msg)
        | Error Truncated -> Ok None
        | Error e ->
            t.failed <- Some e;
            Error e)

  let pending_bytes t = String.length t.pending
end
