examples/peak_crisis.ml: Ef_netsim Ef_sim Ef_stats Ef_util Float Format List Option Printf
