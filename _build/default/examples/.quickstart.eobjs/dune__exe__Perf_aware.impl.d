examples/perf_aware.ml: Edge_fabric Ef_altpath Ef_bgp Ef_collector Ef_netsim Ef_sim Ef_util Float Format List Option Printf
