examples/quickstart.ml: Edge_fabric Ef_bgp Ef_collector Ef_netsim Format List String
