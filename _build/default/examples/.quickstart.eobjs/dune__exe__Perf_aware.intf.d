examples/perf_aware.mli:
