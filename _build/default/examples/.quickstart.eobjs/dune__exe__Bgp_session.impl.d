examples/bgp_session.ml: Ef_bgp Format List Printf Queue String
