examples/quickstart.mli:
