examples/bgp_session.mli:
