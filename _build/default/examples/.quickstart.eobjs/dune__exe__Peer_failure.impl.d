examples/peer_failure.ml: Ef_bgp Ef_netsim Ef_sim Ef_util Float Format List Printf
