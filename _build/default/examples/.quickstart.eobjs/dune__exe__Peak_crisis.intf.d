examples/peak_crisis.mli:
