examples/flash_crowd.ml: Ef_bgp Ef_netsim Ef_sim Ef_traffic Ef_util Format List Printf
