examples/peer_failure.mli:
