(* The BGP substrate as a stand-alone library: two speakers, real bytes.

   Run with:  dune exec examples/bgp_session.exe

   Two sans-IO speakers (think: a peering router and a neighbor) exchange
   OPEN/KEEPALIVE over an in-memory "TCP" pair, reach Established, then
   trade routes — every byte goes through the RFC 4271 codec. This is the
   same machinery the simulator builds PoPs from. *)

module Bgp = Ef_bgp

let mk_speaker asn id =
  Bgp.Speaker.create ~asn:(Bgp.Asn.of_int asn) ~router_id:(Bgp.Ipv4.of_string id) ()

let mk_peer id name asn =
  Bgp.Peer.make ~id ~name ~asn:(Bgp.Asn.of_int asn) ~kind:Bgp.Peer.Transit
    ~router_id:(Bgp.Ipv4.of_octets 10 0 0 id)
    ~session_addr:(Bgp.Ipv4.of_octets 172 16 0 id)

let () =
  let router = mk_speaker 64500 "10.0.0.1" in
  let neighbor = mk_speaker 64501 "10.0.0.2" in
  Bgp.Speaker.add_session router (mk_peer 1 "neighbor" 64501)
    ~policy:Bgp.Policy.accept_all;
  Bgp.Speaker.add_session neighbor (mk_peer 1 "router" 64500)
    ~policy:Bgp.Policy.accept_all;

  (* a tiny event loop over an in-memory socket pair *)
  let bytes_moved = ref 0 in
  let queue = Queue.create () in
  let push side effects = List.iter (fun e -> Queue.push (side, e) queue) effects in
  let speaker_of = function `R -> router | `N -> neighbor in
  let other = function `R -> `N | `N -> `R in
  let connected = ref false in
  let pump () =
    while not (Queue.is_empty queue) do
      let side, effect_ = Queue.pop queue in
      match effect_ with
      | Bgp.Speaker.Write { data; _ } ->
          bytes_moved := !bytes_moved + String.length data;
          push (other side)
            (Bgp.Speaker.receive_bytes (speaker_of (other side)) ~peer_id:1 data)
      | Bgp.Speaker.Request_connect _ ->
          if not !connected then begin
            connected := true;
            push side (Bgp.Speaker.tcp_connected (speaker_of side) ~peer_id:1);
            push (other side)
              (Bgp.Speaker.tcp_connected (speaker_of (other side)) ~peer_id:1)
          end
      | Bgp.Speaker.Peer_up { peer_id } ->
          Printf.printf "  [%s] session to peer %d is Established\n"
            (match side with `R -> "router " | `N -> "neighbor") peer_id
      | Bgp.Speaker.Peer_down { reason; _ } ->
          Printf.printf "  [%s] session down: %s\n"
            (match side with `R -> "router " | `N -> "neighbor") reason
      | Bgp.Speaker.Rib_changed changes ->
          List.iter
            (fun (c : Bgp.Rib.change) ->
              Format.printf "  [%s] best path for %a changed@."
                (match side with `R -> "router " | `N -> "neighbor")
                Bgp.Prefix.pp c.Bgp.Rib.prefix)
            changes
      | Bgp.Speaker.Set_timer _ | Bgp.Speaker.Clear_timer _
      | Bgp.Speaker.Drop_connection _ ->
          ()
    done
  in

  print_endline "1. handshake:";
  push `R (Bgp.Speaker.start router ~peer_id:1);
  push `N (Bgp.Speaker.start neighbor ~peer_id:1);
  pump ();

  print_endline "2. neighbor announces 198.51.100.0/24:";
  let attrs =
    Bgp.Attrs.make
      ~as_path:(Bgp.As_path.of_list [ Bgp.Asn.of_int 64501; Bgp.Asn.of_int 7 ])
      ~next_hop:(Bgp.Ipv4.of_string "172.16.0.1")
      ~communities:[ Bgp.Community.make 64501 100 ]
      ()
  in
  push `N
    (Bgp.Speaker.send_update neighbor ~peer_id:1
       {
         Bgp.Msg.withdrawn = [];
         attrs = Some attrs;
         nlri = [ Bgp.Prefix.v "198.51.100.0/24" ];
       });
  pump ();
  (match Bgp.Rib.best (Bgp.Speaker.rib router) (Bgp.Prefix.v "198.51.100.0/24") with
  | Some r -> Format.printf "  router's best: %a@." Bgp.Route.pp r
  | None -> print_endline "  route missing!");

  print_endline "3. neighbor withdraws it:";
  push `N
    (Bgp.Speaker.send_update neighbor ~peer_id:1
       {
         Bgp.Msg.withdrawn = [ Bgp.Prefix.v "198.51.100.0/24" ];
         attrs = None;
         nlri = [];
       });
  pump ();
  Printf.printf "  router now has %d prefixes\n"
    (Bgp.Rib.prefix_count (Bgp.Speaker.rib router));

  Printf.printf "\ntotal wire bytes exchanged: %d\n" !bytes_moved
